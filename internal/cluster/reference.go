package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file retains the pre-flat-matrix implementations of the three hot
// algorithms, verbatim: Lloyd's K-means over [][]float64 rows, DBSCAN
// with the string-keyed cell grid, and the fully-sorting k-distance scan.
// They are the executable specification the optimized paths are pinned
// against — the randomized equivalence tests assert bitwise-identical
// labels, centroids and distances at any parallelism, and the E11 kernel
// benchmark measures the before/after ratio on the same host. They are
// not wired into any production path.

// KMeansReference is the pre-refactor Lloyd's iteration. Results are
// bitwise-identical to KMeans at any cfg.Parallelism (the reference
// itself always runs sequentially).
func KMeansReference(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: kmeans on empty input")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cluster: point %d holds a non-finite coordinate", i)
			}
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K=%d out of range [1, %d]", cfg.K, n)
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := make([][]float64, cfg.K)
	if cfg.PlusPlus {
		seedPlusPlusReference(rng, points, centroids)
	} else {
		perm := rng.Perm(n)
		for c := 0; c < cfg.K; c++ {
			centroids[c] = append([]float64(nil), points[perm[c]]...)
		}
	}

	labels := make([]int, n)
	sizes := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	var iter int
	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		changed := iter == 1
		for i := 0; i < n; i++ {
			p := points[i]
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := refSqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				changed = true
			}
			labels[i] = best
		}

		for c := range sums {
			sizes[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			sizes[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		maxMove := 0.0
		for c := range centroids {
			if sizes[c] == 0 {
				far, farD := 0, -1.0
				for i, p := range points {
					if d := refSqDist(p, centroids[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = append([]float64(nil), points[far]...)
				labels[far] = c
				sizes[c] = 1
				maxMove = math.Inf(1)
				continue
			}
			move := 0.0
			for d := range centroids[c] {
				nv := sums[c][d] / float64(sizes[c])
				diff := nv - centroids[c][d]
				move += diff * diff
				centroids[c][d] = nv
			}
			if move > maxMove {
				maxMove = move
			}
		}
		if !changed || maxMove <= cfg.Tolerance {
			break
		}
	}

	res := &KMeansResult{
		K:          cfg.K,
		Centroids:  centroids,
		Labels:     labels,
		Iterations: iter,
		Sizes:      make([]int, cfg.K),
	}
	for i := range points {
		res.Sizes[labels[i]]++
		res.SSE += refSqDist(points[i], centroids[labels[i]])
	}
	return res, nil
}

// seedPlusPlusReference is the pre-refactor k-means++ seeding; it draws
// the same rng sequence as the optimized seeding.
func seedPlusPlusReference(rng *rand.Rand, points [][]float64, centroids [][]float64) {
	n := len(points)
	k := len(centroids)
	centroids[0] = append([]float64(nil), points[rng.Intn(n)]...)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = refSqDist(points[i], centroids[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			x := rng.Float64() * total
			for i, d := range dist {
				x -= d
				if x <= 0 {
					pick = i
					break
				}
			}
		}
		centroids[c] = append([]float64(nil), points[pick]...)
		for i := range dist {
			if d := refSqDist(points[i], centroids[c]); d < dist[i] {
				dist[i] = d
			}
		}
	}
}

func refSqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// DBSCANReference is the pre-refactor DBSCAN: the same density
// reachability over the same eps-grid, but with string cell keys and a
// fresh allocation per neighbourhood probe.
func DBSCANReference(points [][]float64, eps float64, minPts int) (*DBSCANResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: dbscan on empty input")
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("cluster: eps must be positive and finite, got %v", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cluster: point %d holds a non-finite coordinate", i)
			}
		}
	}

	idx := newStringCellIndex(points, eps)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise - 1
	}
	const unvisited = Noise - 1

	eps2 := eps * eps
	clusterID := 0
	var queue []int
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neigh := idx.neighbours(i, eps2)
		if len(neigh) < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = clusterID
		queue = append(queue[:0], neigh...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[j] == Noise {
				labels[j] = clusterID
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = clusterID
			jn := idx.neighbours(j, eps2)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		clusterID++
	}

	res := &DBSCANResult{Labels: labels, Clusters: clusterID}
	for _, l := range res.Labels {
		if l == Noise {
			res.NoiseCount++
		}
	}
	return res, nil
}

// stringCellIndex is the pre-refactor grid: cell keys are the "|"-joined
// decimal cell coordinates, allocated per probe.
type stringCellIndex struct {
	points [][]float64
	eps    float64
	cells  map[string][]int32
}

func newStringCellIndex(points [][]float64, eps float64) *stringCellIndex {
	ci := &stringCellIndex{
		points: points,
		eps:    eps,
		cells:  make(map[string][]int32),
	}
	for i, p := range points {
		k := ci.key(p)
		ci.cells[k] = append(ci.cells[k], int32(i))
	}
	return ci
}

func (ci *stringCellIndex) key(p []float64) string {
	buf := make([]byte, 0, len(p)*4)
	for _, v := range p {
		c := int64(math.Floor(v / ci.eps))
		buf = refAppendInt(buf, c)
		buf = append(buf, '|')
	}
	return string(buf)
}

func refAppendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = refAppendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

func (ci *stringCellIndex) neighbours(i int, eps2 float64) []int {
	p := ci.points[i]
	dim := len(p)
	base := make([]int64, dim)
	for d, v := range p {
		base[d] = int64(math.Floor(v / ci.eps))
	}
	offsets := make([]int64, dim)
	for d := range offsets {
		offsets[d] = -1
	}
	var out []int
	for {
		buf := make([]byte, 0, dim*4)
		for d := range base {
			buf = refAppendInt(buf, base[d]+offsets[d])
			buf = append(buf, '|')
		}
		for _, id := range ci.cells[string(buf)] {
			if refSqDist(p, ci.points[id]) <= eps2 {
				out = append(out, int(id))
			}
		}
		d := 0
		for ; d < dim; d++ {
			offsets[d]++
			if offsets[d] <= 1 {
				break
			}
			offsets[d] = -1
		}
		if d == dim {
			break
		}
	}
	return out
}

// KDistancesReference is the pre-refactor k-distance scan: every
// per-point distance slice is fully sorted just to read its k-th entry.
func KDistancesReference(points [][]float64, k int) ([]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: k-distances on empty input")
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1, %d)", k, n)
	}
	out := make([]float64, n)
	dists := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := range points {
			if i == j {
				continue
			}
			dists = append(dists, refSqDist(points[i], points[j]))
		}
		sort.Float64s(dists)
		out[i] = math.Sqrt(dists[k-1])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out, nil
}
