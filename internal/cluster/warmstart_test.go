package cluster

import (
	"math"
	"math/rand"
	"testing"

	"indice/internal/matrix"
)

// warmBlobs builds n points around k well-separated centers in [0,1]^dim.
func warmBlobs(t *testing.T, n, dim, k int, spread float64, seed int64) *matrix.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mus := make([][]float64, k)
	for c := range mus {
		mus[c] = make([]float64, dim)
		for d := range mus[c] {
			mus[c][d] = (float64(c) + 0.5) / float64(k)
		}
	}
	m, err := matrix.New(n, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mu := mus[i%k]
		row := m.Row(i)
		for d := range row {
			row[d] = mu[d] + rng.NormFloat64()*spread
		}
	}
	return m
}

// flatCentroids flattens a KMeansResult's centroids into the WarmStart
// layout.
func flatCentroids(res *KMeansResult) []float64 {
	out := make([]float64, 0, len(res.Centroids)*len(res.Centroids[0]))
	for _, c := range res.Centroids {
		out = append(out, c...)
	}
	return out
}

// TestWarmStartFixedPointBitwise pins the contract the incremental
// refresh relies on: warm-starting from a converged run's centroids on
// the same matrix reproduces labels, centroids and SSE bitwise, in a
// single iteration.
func TestWarmStartFixedPointBitwise(t *testing.T) {
	m := warmBlobs(t, 3000, 4, 5, 0.03, 11)
	cold, err := KMeansMatrix(m, KMeansConfig{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Iterations >= 100 {
		t.Fatalf("cold run did not converge (%d iterations)", cold.Iterations)
	}
	warm, err := KMeansMatrix(m, KMeansConfig{K: 5, WarmStart: flatCentroids(cold)})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != 1 {
		t.Fatalf("warm start at a fixed point took %d iterations, want 1", warm.Iterations)
	}
	if warm.SSE != cold.SSE {
		t.Fatalf("warm SSE %v != cold SSE %v (must be bitwise)", warm.SSE, cold.SSE)
	}
	for i := range cold.Labels {
		if warm.Labels[i] != cold.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, warm.Labels[i], cold.Labels[i])
		}
	}
	for c := range cold.Centroids {
		for d := range cold.Centroids[c] {
			if warm.Centroids[c][d] != cold.Centroids[c][d] {
				t.Fatalf("centroid[%d][%d] = %v, want %v (must be bitwise)",
					c, d, warm.Centroids[c][d], cold.Centroids[c][d])
			}
		}
	}
}

// TestWarmStartConvergesFasterOnDriftedData checks the perf contract: on
// data extended by a small same-distribution delta, resuming from the
// previous centroids converges in (usually far) fewer iterations than
// reseeding, and lands on an equally good fixed point.
func TestWarmStartConvergesFasterOnDriftedData(t *testing.T) {
	base := warmBlobs(t, 5000, 4, 5, 0.03, 21)
	prev, err := KMeansMatrix(base, KMeansConfig{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Extend with a 2% delta drawn from the same blobs.
	grown := warmBlobs(t, 5100, 4, 5, 0.03, 21) // superset shape, fresh draw
	coldNew, err := KMeansMatrix(grown, KMeansConfig{K: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	warmNew, err := KMeansMatrix(grown, KMeansConfig{K: 5, WarmStart: flatCentroids(prev)})
	if err != nil {
		t.Fatal(err)
	}
	if warmNew.Iterations > coldNew.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warmNew.Iterations, coldNew.Iterations)
	}
	// Both should find the blob structure; SSE within 1% of each other.
	if rel := math.Abs(warmNew.SSE-coldNew.SSE) / coldNew.SSE; rel > 0.01 {
		t.Fatalf("warm SSE %v vs cold SSE %v (rel %v)", warmNew.SSE, coldNew.SSE, rel)
	}
}

func TestWarmStartValidation(t *testing.T) {
	m := warmBlobs(t, 100, 3, 2, 0.05, 1)
	if _, err := KMeansMatrix(m, KMeansConfig{K: 2, WarmStart: []float64{1, 2, 3}}); err == nil {
		t.Fatal("want error for wrong warm-start length")
	}
	bad := []float64{0, 0, 0, 1, 1, math.NaN()}
	if _, err := KMeansMatrix(m, KMeansConfig{K: 2, WarmStart: bad}); err == nil {
		t.Fatal("want error for non-finite warm-start value")
	}
	// A valid warm start must ignore Seed entirely: two different seeds
	// with the same warm start produce identical results.
	ws := []float64{0.2, 0.2, 0.2, 0.8, 0.8, 0.8}
	a, err := KMeansMatrix(m, KMeansConfig{K: 2, Seed: 1, WarmStart: ws})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeansMatrix(m, KMeansConfig{K: 2, Seed: 99, WarmStart: ws})
	if err != nil {
		t.Fatal(err)
	}
	if a.SSE != b.SSE || a.Iterations != b.Iterations {
		t.Fatalf("warm start not seed-independent: %v/%d vs %v/%d",
			a.SSE, a.Iterations, b.SSE, b.Iterations)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label[%d] differs across seeds under warm start", i)
		}
	}
}
