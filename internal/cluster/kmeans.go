// Package cluster implements the unsupervised-learning substrate of the
// INDICE analytics engine: Lloyd's K-means with SSE-based elbow selection
// of K (as the paper prescribes, following Tan et al.), the DBSCAN
// density-based algorithm used for multivariate outlier detection, and the
// silhouette quality index.
//
// Since the flat-matrix PR the compute core operates on
// matrix.Matrix (dense row-major, one allocation) instead of
// [][]float64 rows: the *Matrix entry points are the primary API and the
// historical [][]float64 functions are thin adapters that copy into a
// flat matrix once. K-means additionally maintains Hamerly-style
// upper/lower distance bounds so converged points skip the
// point-centroid distance scan entirely; the bounds are kept
// conservative (inflated/deflated by a slack far above the worst-case
// rounding noise) and every undecided point falls back to the exact
// reference arithmetic, so labels, centroids, SSE and iteration counts
// are bitwise-identical to the retained pre-refactor reference
// (KMeansReference) at any parallelism.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"indice/internal/matrix"
	"indice/internal/parallel"
)

// KMeansConfig parameterizes a K-means run.
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives centroid initialization.
	Seed int64
	// PlusPlus selects k-means++ seeding instead of the paper's uniform
	// random initial centroids. Exposed for the ablation bench.
	PlusPlus bool
	// Tolerance stops iteration when no centroid moves more than this
	// (squared Euclidean); 0 means exact convergence.
	Tolerance float64
	// WarmStart, when non-empty, supplies the K initial centroids as one
	// flat row-major []float64 of length K×dim, skipping random seeding
	// entirely (Seed and PlusPlus are then ignored). Incremental refreshes
	// use it to resume Lloyd's iteration from the previous epoch's
	// converged centroids: on slowly drifting data the run converges in a
	// handful of iterations instead of re-descending from scratch, and a
	// warm start at an exact fixed point reproduces it bitwise in one
	// iteration.
	WarmStart []float64
	// Parallelism bounds the worker goroutines of the assignment step
	// (and, in SSECurve, of the sweep jobs). 0 or 1 run sequentially;
	// parallel.Auto uses every CPU. Results are bitwise-identical at any
	// setting: labels are per-point deterministic and every floating-point
	// reduction folds in point-index order.
	Parallelism int
}

// KMeansResult is the outcome of a K-means run.
type KMeansResult struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	SSE        float64
	Iterations int
	// Sizes[c] is the population of cluster c.
	Sizes []int
}

// KMeans clusters the row-major points into cfg.K groups with Lloyd's
// algorithm under the Euclidean metric. It is a thin adapter over
// KMeansMatrix; see there for the algorithm.
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	if len(points) == 0 {
		return nil, errors.New("cluster: kmeans on empty input")
	}
	m, err := matrix.FromRows(points)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return KMeansMatrix(m, cfg)
}

// boundSlack is the relative margin applied to every stored distance
// bound: upper bounds are inflated and lower bounds deflated by it on
// each update. It sits orders of magnitude above the worst-case rounding
// noise of the underlying float64 arithmetic (≈1e-14 relative for the
// dimensionalities INDICE uses), so a bound comparison that prunes is
// always sound and any genuinely ambiguous point falls through to the
// exact per-centroid scan.
const boundSlack = 1e-12

func boundUp(x float64) float64 { return x * (1 + boundSlack) }

func boundDown(x float64) float64 {
	x *= 1 - boundSlack
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return x
}

// KMeansMatrix is K-means over a flat matrix of points (one row per
// point). Lloyd's iteration is accelerated two ways without changing a
// single output bit relative to KMeansReference:
//
//   - Hamerly-style bounds: each point carries a conservative upper bound
//     on its distance to its assigned centroid and a lower bound on its
//     distance to every other centroid. After the centroid update the
//     bounds shift by the centroid movements; while upper < lower the
//     point provably keeps its label and the whole distance scan is
//     skipped.
//   - expanded-distance screening: when a point does need a scan, the
//     |x|²+|c|²−2x·c kernel (precomputed norms, contiguous centroid
//     rows) ranks the centroids, and only candidates within the kernel's
//     error bound of the minimum are confirmed with the exact reference
//     loop — which also supplies the exact tie-break ordering.
func KMeansMatrix(m *matrix.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	n, dim := m.Rows(), m.Cols()
	if n == 0 {
		return nil, errors.New("cluster: kmeans on empty input")
	}
	if i := m.Finite(); i >= 0 {
		return nil, fmt.Errorf("cluster: point %d holds a non-finite coordinate", i)
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K=%d out of range [1, %d]", cfg.K, n)
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	cents, err := matrix.New(cfg.K, dim)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	switch {
	case len(cfg.WarmStart) > 0:
		if len(cfg.WarmStart) != cfg.K*dim {
			return nil, fmt.Errorf("cluster: warm start carries %d values, want K×dim = %d×%d",
				len(cfg.WarmStart), cfg.K, dim)
		}
		for i, v := range cfg.WarmStart {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cluster: warm-start value %d is not finite", i)
			}
		}
		copy(cents.Data(), cfg.WarmStart)
	case cfg.PlusPlus:
		seedPlusPlus(rand.New(rand.NewSource(cfg.Seed)), m, cents)
	default:
		// The paper's variant: K distinct points picked uniformly.
		perm := rand.New(rand.NewSource(cfg.Seed)).Perm(n)
		for c := 0; c < cfg.K; c++ {
			cents.CopyRow(c, m.Row(perm[c]))
		}
	}

	labels := make([]int, n)
	sizes := make([]int, cfg.K)
	sums := make([]float64, cfg.K*dim)

	// Bound state: xn/cn are the squared row norms feeding the expanded
	// kernel; upper/lower are the per-point Hamerly bounds (Euclidean,
	// not squared). upper=+Inf forces a full scan, so iteration 1
	// assigns every point exactly as the reference does.
	xn := m.RowNorms(nil)
	var cn []float64
	upper := make([]float64, n)
	lower := make([]float64, n)
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	deltas := make([]float64, cfg.K)
	// sHalf[c] is a safe lower bound on half the distance from centroid c
	// to its nearest other centroid: a point whose upper bound is below it
	// is provably nearest to c (triangle inequality), independently of how
	// far its lower bound has decayed. Recomputed per iteration, O(K²·dim).
	sHalf := make([]float64, cfg.K)

	var iter int
	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		cn = cents.RowNorms(cn)
		for c := 0; c < cfg.K; c++ {
			nearest := math.Inf(1)
			for c2 := 0; c2 < cfg.K; c2++ {
				if c2 == c {
					continue
				}
				if d := matrix.SqDist(cents.Row(c), cents.Row(c2)); d < nearest {
					nearest = d
				}
			}
			sHalf[c] = boundDown(0.5 * math.Sqrt(nearest))
		}
		// Assignment step: each point's nearest centroid is independent of
		// every other point, so chunks of the row range fan out across the
		// workers. Ties resolve to the lowest centroid index either way.
		var changedFlag atomic.Bool
		if iter == 1 {
			changedFlag.Store(true)
		}
		parallel.For(n, cfg.Parallelism, func(start, end int) {
			chunkChanged := false
			dbuf := make([]float64, cfg.K)
			exact := make([]bool, cfg.K)
			for i := start; i < end; i++ {
				if u, a := upper[i], labels[i]; u < lower[i] || u < sHalf[a] {
					continue // provably still nearest to labels[i]
				}
				x := m.Row(i)
				// Tighten the upper bound with one exact distance before
				// paying for the full scan.
				u := boundUp(math.Sqrt(matrix.SqDist(x, cents.Row(labels[i]))))
				upper[i] = u
				if u < lower[i] || u < sHalf[labels[i]] {
					continue
				}
				best, bestD, secondLB := nearestCentroid(x, xn[i], cents, cn, dbuf, exact)
				if labels[i] != best {
					chunkChanged = true
				}
				labels[i] = best
				upper[i] = boundUp(math.Sqrt(bestD))
				lower[i] = secondLB
			}
			if chunkChanged {
				changedFlag.Store(true)
			}
		})
		changed := changedFlag.Load()

		// Update step: sums fold in point-index order, exactly the
		// reference arithmetic.
		for c := range sizes {
			sizes[c] = 0
		}
		for j := range sums {
			sums[j] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			sizes[c]++
			acc := sums[c*dim : (c+1)*dim]
			for d, v := range m.Row(i) {
				acc[d] += v
			}
		}
		maxMove := 0.0
		// The two largest centroid movements and the mover's index: a
		// point's lower bound only decays by movements of non-assigned
		// centroids, so points of the biggest mover decay by the runner-up.
		maxDelta, maxDelta2 := 0.0, 0.0
		maxDeltaC := -1
		reseeded := false
		for c := 0; c < cfg.K; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster with the globally worst-fitted
				// point.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if d := matrix.SqDist(m.Row(i), cents.Row(labels[i])); d > farD {
						far, farD = i, d
					}
				}
				cents.CopyRow(c, m.Row(far))
				labels[far] = c
				sizes[c] = 1
				maxMove = math.Inf(1)
				reseeded = true
				continue
			}
			move := 0.0
			crow := cents.Row(c)
			for d := 0; d < dim; d++ {
				nv := sums[c*dim+d] / float64(sizes[c])
				diff := nv - crow[d]
				move += diff * diff
				crow[d] = nv
			}
			if move > maxMove {
				maxMove = move
			}
			deltas[c] = math.Sqrt(move)
			if deltas[c] > maxDelta {
				maxDelta2 = maxDelta
				maxDelta, maxDeltaC = deltas[c], c
			} else if deltas[c] > maxDelta2 {
				maxDelta2 = deltas[c]
			}
		}
		if !changed || maxMove <= cfg.Tolerance {
			break
		}
		// Shift the bounds across the centroid movements. A re-seed
		// teleports a centroid, so bounds reset wholesale (rare).
		if reseeded {
			for i := range upper {
				upper[i] = math.Inf(1)
				lower[i] = 0
			}
		} else {
			for i := 0; i < n; i++ {
				a := labels[i]
				upper[i] = boundUp(upper[i] + deltas[a])
				if a == maxDeltaC {
					lower[i] = boundDown(lower[i] - maxDelta2)
				} else {
					lower[i] = boundDown(lower[i] - maxDelta)
				}
			}
		}
	}

	// Final stats. Distances fan out per point; the SSE folds sequentially
	// in point-index order so the sum is bitwise-stable across worker
	// counts.
	res := &KMeansResult{
		K:          cfg.K,
		Centroids:  make([][]float64, cfg.K),
		Labels:     labels,
		Iterations: iter,
		Sizes:      make([]int, cfg.K),
	}
	for c := 0; c < cfg.K; c++ {
		res.Centroids[c] = append([]float64(nil), cents.Row(c)...)
	}
	dists := make([]float64, n)
	parallel.For(n, cfg.Parallelism, func(start, end int) {
		for i := start; i < end; i++ {
			dists[i] = matrix.SqDist(m.Row(i), cents.Row(labels[i]))
		}
	})
	for i := 0; i < n; i++ {
		res.Sizes[labels[i]]++
		res.SSE += dists[i]
	}
	return res, nil
}

// nearestCentroid returns the point's exact nearest centroid (lowest
// index on ties, exactly as a sequential strict-< scan of exact
// distances), the exact squared distance to it, and a safe lower bound on
// the Euclidean distance to the second-closest centroid.
//
// The expanded kernel ranks all centroids in one pass over the contiguous
// centroid matrix; every centroid within the kernel's error bound of the
// approximate minimum is then confirmed with the exact loop, so the
// winner and its distance carry reference arithmetic. dbuf and exact are
// caller-owned scratch of length K.
func nearestCentroid(x []float64, xn float64, cents *matrix.Matrix, cn, dbuf []float64, exact []bool) (best int, bestD, secondLB float64) {
	k := cents.Rows()
	matrix.SqDistsTo(dbuf, x, xn, cents, cn)
	approxV := math.Inf(1)
	cnMax := 0.0
	for j := 0; j < k; j++ {
		if dbuf[j] < approxV {
			approxV = dbuf[j]
		}
		if cn[j] > cnMax {
			cnMax = cn[j]
		}
	}
	eMax := matrix.SqDistErrorBound(cents.Cols(), xn, cnMax)
	thresh := approxV + 2*eMax

	best, bestD = 0, math.Inf(1)
	for j := 0; j < k; j++ {
		if dbuf[j] > thresh {
			exact[j] = false
			continue
		}
		d := matrix.SqDist(x, cents.Row(j))
		dbuf[j] = d
		exact[j] = true
		if d < bestD {
			best, bestD = j, d
		}
	}

	// Lower bound on the squared distance to any non-best centroid:
	// exact entries are exact, screened-out entries get the error bound
	// subtracted.
	slb := math.Inf(1)
	for j := 0; j < k; j++ {
		if j == best {
			continue
		}
		v := dbuf[j]
		if !exact[j] {
			v -= eMax
		}
		if v < slb {
			slb = v
		}
	}
	if slb < 0 {
		slb = 0
	}
	secondLB = boundDown(math.Sqrt(slb))
	return best, bestD, secondLB
}

// seedPlusPlus performs k-means++ seeding into cents, reusing one
// distance buffer across all K draws. It consumes the rng stream and
// produces centroids bitwise-identically to the pre-refactor seeding.
func seedPlusPlus(rng *rand.Rand, m *matrix.Matrix, cents *matrix.Matrix) {
	n := m.Rows()
	k := cents.Rows()
	cents.CopyRow(0, m.Row(rng.Intn(n)))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = matrix.SqDist(m.Row(i), cents.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			x := rng.Float64() * total
			for i, d := range dist {
				x -= d
				if x <= 0 {
					pick = i
					break
				}
			}
		}
		cents.CopyRow(c, m.Row(pick))
		crow := cents.Row(c)
		for i := range dist {
			if d := matrix.SqDist(m.Row(i), crow); d < dist[i] {
				dist[i] = d
			}
		}
	}
}

func sqDist(a, b []float64) float64 {
	return matrix.SqDist(a, b)
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b []float64) float64 {
	return math.Sqrt(matrix.SqDist(a, b))
}

// SSECurvePoint pairs a K value with the SSE of the best run at that K.
type SSECurvePoint struct {
	K   int
	SSE float64
}

// SSECurve runs K-means for every K in [kMin, kMax] and returns the SSE
// trend the elbow method inspects. Thin adapter over SSECurveMatrix.
func SSECurve(points [][]float64, kMin, kMax, restarts int, cfg KMeansConfig) ([]SSECurvePoint, error) {
	m, err := matrix.FromRows(points)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return SSECurveMatrix(m, kMin, kMax, restarts, cfg)
}

// SSECurveMatrix runs K-means for every K in [kMin, kMax] over the flat
// point matrix and returns the SSE trend the elbow method inspects. Each
// K is run restarts times (≥1) with distinct seeds, keeping the lowest
// SSE. With cfg.Parallelism > 1 the (K, restart) runs fan out across the
// workers as independent jobs sharing the read-only matrix; each job is
// seeded exactly as the sequential sweep and the per-K minimum folds in
// restart order, so the curve is bitwise-identical at any parallelism.
func SSECurveMatrix(m *matrix.Matrix, kMin, kMax, restarts int, cfg KMeansConfig) ([]SSECurvePoint, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: bad K range [%d, %d]", kMin, kMax)
	}
	if restarts < 1 {
		restarts = 1
	}
	nk := kMax - kMin + 1
	sses, err := parallel.MapErr(nk*restarts, cfg.Parallelism, func(j int) (float64, error) {
		k := kMin + j/restarts
		r := j % restarts
		c := cfg
		c.K = k
		c.Seed = cfg.Seed + int64(r)*7919 + int64(k)
		c.Parallelism = 1 // the sweep parallelizes across jobs, not within
		res, err := KMeansMatrix(m, c)
		if err != nil {
			return 0, err
		}
		return res.SSE, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]SSECurvePoint, 0, nk)
	for k := kMin; k <= kMax; k++ {
		best := math.Inf(1)
		for r := 0; r < restarts; r++ {
			if sse := sses[(k-kMin)*restarts+r]; sse < best {
				best = sse
			}
		}
		out = append(out, SSECurvePoint{K: k, SSE: best})
	}
	return out, nil
}

// ElbowK picks the K "where the marginal decrease in the SSE curve is
// maximized" (Tan et al., as cited by the paper). With both axes
// normalized to [0,1], the elbow is the curve point farthest from the
// chord joining the curve's endpoints — the geometric reading of the
// criterion that is robust to the very large SSE drop at small K. Curves
// with fewer than three points return the smallest K.
func ElbowK(curve []SSECurvePoint) (int, error) {
	if len(curve) == 0 {
		return 0, errors.New("cluster: empty SSE curve")
	}
	if len(curve) < 3 {
		return curve[0].K, nil
	}
	n := len(curve)
	minSSE, maxSSE := curve[0].SSE, curve[0].SSE
	for _, p := range curve {
		if p.SSE < minSSE {
			minSSE = p.SSE
		}
		if p.SSE > maxSSE {
			maxSSE = p.SSE
		}
	}
	span := maxSSE - minSSE
	if span == 0 {
		return curve[0].K, nil
	}
	// Normalized coordinates: x in [0,1] over index, y in [0,1] over SSE.
	// Chord runs from the first to the last point.
	x1, y1 := 0.0, (curve[0].SSE-minSSE)/span
	x2, y2 := 1.0, (curve[n-1].SSE-minSSE)/span
	den := math.Hypot(y2-y1, x2-x1)
	bestK := curve[0].K
	bestD := math.Inf(-1)
	for i, p := range curve {
		x := float64(i) / float64(n-1)
		y := (p.SSE - minSSE) / span
		d := math.Abs((y2-y1)*x-(x2-x1)*y+x2*y1-y2*x1) / den
		if d > bestD {
			bestD = d
			bestK = p.K
		}
	}
	return bestK, nil
}
