// Package cluster implements the unsupervised-learning substrate of the
// INDICE analytics engine: Lloyd's K-means with SSE-based elbow selection
// of K (as the paper prescribes, following Tan et al.), the DBSCAN
// density-based algorithm used for multivariate outlier detection, and the
// silhouette quality index.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"indice/internal/parallel"
)

// KMeansConfig parameterizes a K-means run.
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives centroid initialization.
	Seed int64
	// PlusPlus selects k-means++ seeding instead of the paper's uniform
	// random initial centroids. Exposed for the ablation bench.
	PlusPlus bool
	// Tolerance stops iteration when no centroid moves more than this
	// (squared Euclidean); 0 means exact convergence.
	Tolerance float64
	// Parallelism bounds the worker goroutines of the assignment step
	// (and, in SSECurve, of the sweep jobs). 0 or 1 run sequentially;
	// parallel.Auto uses every CPU. Results are bitwise-identical at any
	// setting: labels are per-point deterministic and every floating-point
	// reduction folds in point-index order.
	Parallelism int
}

// KMeansResult is the outcome of a K-means run.
type KMeansResult struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	SSE        float64
	Iterations int
	// Sizes[c] is the population of cluster c.
	Sizes []int
}

// KMeans clusters the row-major points into cfg.K groups with Lloyd's
// algorithm under the Euclidean metric. Empty clusters are re-seeded with
// the point farthest from its centroid, so every cluster in the result is
// non-empty whenever K ≤ len(points).
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: kmeans on empty input")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cluster: point %d holds a non-finite coordinate", i)
			}
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K=%d out of range [1, %d]", cfg.K, n)
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := make([][]float64, cfg.K)
	if cfg.PlusPlus {
		seedPlusPlus(rng, points, centroids)
	} else {
		// The paper's variant: K distinct points picked uniformly.
		perm := rng.Perm(n)
		for c := 0; c < cfg.K; c++ {
			centroids[c] = append([]float64(nil), points[perm[c]]...)
		}
	}

	labels := make([]int, n)
	sizes := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	var iter int
	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		// Assignment step: each point's nearest centroid is independent of
		// every other point, so chunks of the row range fan out across the
		// workers. Ties resolve to the lowest centroid index either way.
		var changedFlag atomic.Bool
		if iter == 1 {
			changedFlag.Store(true)
		}
		parallel.For(n, cfg.Parallelism, func(start, end int) {
			chunkChanged := false
			for i := start; i < end; i++ {
				p := points[i]
				best, bestD := 0, math.Inf(1)
				for c, cen := range centroids {
					if d := sqDist(p, cen); d < bestD {
						best, bestD = c, d
					}
				}
				if labels[i] != best {
					chunkChanged = true
				}
				labels[i] = best
			}
			if chunkChanged {
				changedFlag.Store(true)
			}
		})
		changed := changedFlag.Load()

		// Update step.
		for c := range sums {
			sizes[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			sizes[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		maxMove := 0.0
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster with the globally worst-fitted
				// point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = append([]float64(nil), points[far]...)
				labels[far] = c
				sizes[c] = 1
				maxMove = math.Inf(1)
				continue
			}
			move := 0.0
			for d := range centroids[c] {
				nv := sums[c][d] / float64(sizes[c])
				diff := nv - centroids[c][d]
				move += diff * diff
				centroids[c][d] = nv
			}
			if move > maxMove {
				maxMove = move
			}
		}
		if !changed || maxMove <= cfg.Tolerance {
			break
		}
	}

	// Final stats. Distances fan out per point; the SSE folds sequentially
	// in point-index order so the sum is bitwise-stable across worker
	// counts.
	res := &KMeansResult{
		K:          cfg.K,
		Centroids:  centroids,
		Labels:     labels,
		Iterations: iter,
		Sizes:      make([]int, cfg.K),
	}
	dists := make([]float64, n)
	parallel.For(n, cfg.Parallelism, func(start, end int) {
		for i := start; i < end; i++ {
			dists[i] = sqDist(points[i], centroids[labels[i]])
		}
	})
	for i := range points {
		res.Sizes[labels[i]]++
		res.SSE += dists[i]
	}
	return res, nil
}

// seedPlusPlus performs k-means++ seeding into centroids.
func seedPlusPlus(rng *rand.Rand, points [][]float64, centroids [][]float64) {
	n := len(points)
	k := len(centroids)
	centroids[0] = append([]float64(nil), points[rng.Intn(n)]...)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(points[i], centroids[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			x := rng.Float64() * total
			for i, d := range dist {
				x -= d
				if x <= 0 {
					pick = i
					break
				}
			}
		}
		centroids[c] = append([]float64(nil), points[pick]...)
		for i := range dist {
			if d := sqDist(points[i], centroids[c]); d < dist[i] {
				dist[i] = d
			}
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b []float64) float64 {
	return math.Sqrt(sqDist(a, b))
}

// SSECurvePoint pairs a K value with the SSE of the best run at that K.
type SSECurvePoint struct {
	K   int
	SSE float64
}

// SSECurve runs K-means for every K in [kMin, kMax] and returns the SSE
// trend the elbow method inspects. Each K is run restarts times (≥1) with
// distinct seeds, keeping the lowest SSE. With cfg.Parallelism > 1 the
// (K, restart) runs fan out across the workers as independent jobs; each
// job is seeded exactly as the sequential sweep and the per-K minimum
// folds in restart order, so the curve is bitwise-identical at any
// parallelism.
func SSECurve(points [][]float64, kMin, kMax, restarts int, cfg KMeansConfig) ([]SSECurvePoint, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: bad K range [%d, %d]", kMin, kMax)
	}
	if restarts < 1 {
		restarts = 1
	}
	nk := kMax - kMin + 1
	sses, err := parallel.MapErr(nk*restarts, cfg.Parallelism, func(j int) (float64, error) {
		k := kMin + j/restarts
		r := j % restarts
		c := cfg
		c.K = k
		c.Seed = cfg.Seed + int64(r)*7919 + int64(k)
		c.Parallelism = 1 // the sweep parallelizes across jobs, not within
		res, err := KMeans(points, c)
		if err != nil {
			return 0, err
		}
		return res.SSE, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]SSECurvePoint, 0, nk)
	for k := kMin; k <= kMax; k++ {
		best := math.Inf(1)
		for r := 0; r < restarts; r++ {
			if sse := sses[(k-kMin)*restarts+r]; sse < best {
				best = sse
			}
		}
		out = append(out, SSECurvePoint{K: k, SSE: best})
	}
	return out, nil
}

// ElbowK picks the K "where the marginal decrease in the SSE curve is
// maximized" (Tan et al., as cited by the paper). With both axes
// normalized to [0,1], the elbow is the curve point farthest from the
// chord joining the curve's endpoints — the geometric reading of the
// criterion that is robust to the very large SSE drop at small K. Curves
// with fewer than three points return the smallest K.
func ElbowK(curve []SSECurvePoint) (int, error) {
	if len(curve) == 0 {
		return 0, errors.New("cluster: empty SSE curve")
	}
	if len(curve) < 3 {
		return curve[0].K, nil
	}
	n := len(curve)
	minSSE, maxSSE := curve[0].SSE, curve[0].SSE
	for _, p := range curve {
		if p.SSE < minSSE {
			minSSE = p.SSE
		}
		if p.SSE > maxSSE {
			maxSSE = p.SSE
		}
	}
	span := maxSSE - minSSE
	if span == 0 {
		return curve[0].K, nil
	}
	// Normalized coordinates: x in [0,1] over index, y in [0,1] over SSE.
	// Chord runs from the first to the last point.
	x1, y1 := 0.0, (curve[0].SSE-minSSE)/span
	x2, y2 := 1.0, (curve[n-1].SSE-minSSE)/span
	den := math.Hypot(y2-y1, x2-x1)
	bestK := curve[0].K
	bestD := math.Inf(-1)
	for i, p := range curve {
		x := float64(i) / float64(n-1)
		y := (p.SSE - minSSE) / span
		d := math.Abs((y2-y1)*x-(x2-x1)*y+x2*y1-y2*x1) / den
		if d > bestD {
			bestD = d
			bestK = p.K
		}
	}
	return bestK, nil
}
