package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates g well-separated Gaussian blobs of m points each.
func blobs(seed int64, g, m int, spread float64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, g*m)
	truth := make([]int, 0, g*m)
	for c := 0; c < g; c++ {
		cx := float64(c * 10)
		cy := float64((c % 2) * 10)
		for i := 0; i < m; i++ {
			pts = append(pts, []float64{
				cx + rng.NormFloat64()*spread,
				cy + rng.NormFloat64()*spread,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansRecoverseparatedBlobs(t *testing.T) {
	pts, truth := blobs(1, 3, 60, 0.5)
	res, err := KMeans(pts, KMeansConfig{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || len(res.Labels) != len(pts) {
		t.Fatalf("shape: %+v", res)
	}
	// Every true blob must map to exactly one k-means cluster.
	mapping := map[int]int{}
	for i, l := range res.Labels {
		if prev, ok := mapping[truth[i]]; ok {
			if prev != l {
				t.Fatalf("blob %d split across clusters", truth[i])
			}
		} else {
			mapping[truth[i]] = l
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	for c, s := range res.Sizes {
		if s != 60 {
			t.Fatalf("cluster %d size = %d", c, s)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	pts, _ := blobs(2, 2, 20, 1)
	res, err := KMeans(pts, KMeansConfig{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("K=1 should label everything 0")
		}
	}
	// SSE with one cluster equals total variance around the mean.
	if res.SSE <= 0 {
		t.Fatalf("SSE = %v", res.SSE)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 1}); err == nil {
		t.Fatal("want error on empty input")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(pts, KMeansConfig{K: 0}); err == nil {
		t.Fatal("want error for K=0")
	}
	if _, err := KMeans(pts, KMeansConfig{K: 3}); err == nil {
		t.Fatal("want error for K>n")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, KMeansConfig{K: 1}); err == nil {
		t.Fatal("want error for ragged input")
	}
	if _, err := KMeans([][]float64{{math.NaN()}}, KMeansConfig{K: 1}); err == nil {
		t.Fatal("want error for NaN input")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := blobs(3, 3, 40, 1)
	a, err := KMeans(pts, KMeansConfig{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, KMeansConfig{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
	if a.SSE != b.SSE {
		t.Fatal("same seed, different SSE")
	}
}

func TestKMeansNoEmptyClusters(t *testing.T) {
	// Adversarial: many duplicated points, K close to n.
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), 0}
	}
	res, err := KMeans(pts, KMeansConfig{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes {
		if s == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}

func TestKMeansSSEDecreasesWithKProperty(t *testing.T) {
	pts, _ := blobs(4, 4, 30, 2)
	curve, err := SSECurve(pts, 1, 8, 3, KMeansConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		// Monotone non-increasing up to restart noise.
		if curve[i].SSE > curve[i-1].SSE*1.05 {
			t.Fatalf("SSE rose sharply at K=%d: %v -> %v", curve[i].K, curve[i-1].SSE, curve[i].SSE)
		}
	}
}

func TestElbowKFindsTrueK(t *testing.T) {
	pts, _ := blobs(5, 4, 50, 0.4)
	curve, err := SSECurve(pts, 1, 9, 4, KMeansConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k, err := ElbowK(curve)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("elbow K = %d, want 4", k)
	}
}

func TestElbowKEdgeCases(t *testing.T) {
	if _, err := ElbowK(nil); err == nil {
		t.Fatal("want error for empty curve")
	}
	k, err := ElbowK([]SSECurvePoint{{K: 2, SSE: 5}})
	if err != nil || k != 2 {
		t.Fatalf("single-point curve: %d, %v", k, err)
	}
}

func TestKMeansPlusPlusNotWorse(t *testing.T) {
	pts, _ := blobs(6, 5, 40, 1.2)
	var sseRand, ssePP float64
	for r := int64(0); r < 5; r++ {
		a, err := KMeans(pts, KMeansConfig{K: 5, Seed: r})
		if err != nil {
			t.Fatal(err)
		}
		b, err := KMeans(pts, KMeansConfig{K: 5, Seed: r, PlusPlus: true})
		if err != nil {
			t.Fatal(err)
		}
		sseRand += a.SSE
		ssePP += b.SSE
	}
	// k-means++ should not be dramatically worse on average.
	if ssePP > sseRand*1.5 {
		t.Fatalf("k-means++ mean SSE %v much worse than random %v", ssePP/5, sseRand/5)
	}
}

func TestDBSCANBlobsAndNoise(t *testing.T) {
	pts, _ := blobs(7, 2, 80, 0.4)
	// Plant three isolated outliers.
	pts = append(pts, []float64{100, 100}, []float64{-50, 70}, []float64{60, -60})
	res, err := DBSCAN(pts, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.Clusters)
	}
	if res.NoiseCount != 3 {
		t.Fatalf("noise = %d, want 3", res.NoiseCount)
	}
	for i := len(pts) - 3; i < len(pts); i++ {
		if res.Labels[i] != Noise {
			t.Fatalf("outlier %d labelled %d", i, res.Labels[i])
		}
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	res, err := DBSCAN(pts, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 || res.NoiseCount != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	pts, _ := blobs(8, 1, 50, 0.3)
	res, err := DBSCAN(pts, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Fatalf("clusters = %d", res.Clusters)
	}
	if res.NoiseCount > 2 {
		t.Fatalf("noise = %d", res.NoiseCount)
	}
}

func TestDBSCANErrors(t *testing.T) {
	if _, err := DBSCAN(nil, 1, 2); err == nil {
		t.Fatal("want error on empty input")
	}
	pts := [][]float64{{0, 0}}
	if _, err := DBSCAN(pts, 0, 2); err == nil {
		t.Fatal("want error for eps=0")
	}
	if _, err := DBSCAN(pts, 1, 0); err == nil {
		t.Fatal("want error for minPts=0")
	}
	if _, err := DBSCAN([][]float64{{0}, {0, 1}}, 1, 1); err == nil {
		t.Fatal("want error for ragged input")
	}
	if _, err := DBSCAN([][]float64{{math.Inf(1)}}, 1, 1); err == nil {
		t.Fatal("want error for Inf input")
	}
}

func TestDBSCANMatchesBruteForceProperty(t *testing.T) {
	// The grid-accelerated neighbour query must agree with brute force on
	// cluster/noise structure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		eps := 0.8
		minPts := 4
		res, err := DBSCAN(pts, eps, minPts)
		if err != nil {
			return false
		}
		// Core property: a point with >= minPts neighbours is never noise;
		// a noise point has < minPts neighbours within eps.
		for i := range pts {
			cnt := 0
			for j := range pts {
				if Dist(pts[i], pts[j]) <= eps {
					cnt++
				}
			}
			if cnt >= minPts && res.Labels[i] == Noise {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKDistances(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {10, 10}}
	kd, err := KDistances(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kd) != 4 {
		t.Fatalf("len = %d", len(kd))
	}
	// Sorted descending; the isolated point dominates.
	for i := 1; i < len(kd); i++ {
		if kd[i] > kd[i-1] {
			t.Fatalf("not descending: %v", kd)
		}
	}
	if kd[0] < 12 {
		t.Fatalf("isolated point 1-distance = %v", kd[0])
	}
	if _, err := KDistances(pts, 4); err == nil {
		t.Fatal("want error for k >= n")
	}
	if _, err := KDistances(nil, 1); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestEstimateDBSCANParams(t *testing.T) {
	pts, _ := blobs(9, 3, 60, 0.4)
	eps, minPts, err := EstimateDBSCANParams(pts, []int{3, 4, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Fatalf("eps = %v", eps)
	}
	if minPts < 3 || minPts > 8 {
		t.Fatalf("minPts = %d", minPts)
	}
	// The estimated parameters should recover the blob structure.
	res, err := DBSCAN(pts, eps, minPts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 2 || res.Clusters > 4 {
		t.Fatalf("clusters with estimated params = %d", res.Clusters)
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	sep, _ := blobs(10, 2, 40, 0.3)
	sepRes, err := KMeans(sep, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sGood, err := Silhouette(sep, sepRes.Labels)
	if err != nil {
		t.Fatal(err)
	}
	ovl, _ := blobs(10, 2, 40, 6.0)
	ovlRes, err := KMeans(ovl, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sBad, err := Silhouette(ovl, ovlRes.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if sGood < 0.7 {
		t.Fatalf("separated silhouette = %v", sGood)
	}
	if sBad >= sGood {
		t.Fatalf("overlapping silhouette %v >= separated %v", sBad, sGood)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil); err == nil {
		t.Fatal("want error for empty input")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := Silhouette(pts, []int{0, 0}); err == nil {
		t.Fatal("want error for single cluster")
	}
}

func BenchmarkKMeans(b *testing.B) {
	pts, _ := blobs(11, 5, 5000, 1.0)
	cfg := KMeansConfig{K: 5, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	pts, _ := blobs(12, 4, 2500, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCAN(pts, 2.0, 5); err != nil {
			b.Fatal(err)
		}
	}
}
