package geocode

import (
	"fmt"

	"indice/internal/epc"
	"indice/internal/table"
	"indice/internal/textmatch"
)

// Method records how a row's location was resolved.
type Method int

const (
	// MethodUntouched means the address matched the street map exactly.
	MethodUntouched Method = iota
	// MethodStreetMap means the referenced address replaced the original
	// because the Levenshtein similarity reached the threshold ϕ.
	MethodStreetMap
	// MethodGeocoder means the remote fallback resolved the address.
	MethodGeocoder
	// MethodUnresolved means no source could fix the row.
	MethodUnresolved
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodUntouched:
		return "untouched"
	case MethodStreetMap:
		return "street-map"
	case MethodGeocoder:
		return "geocoder"
	case MethodUnresolved:
		return "unresolved"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// CleanConfig parameterizes the cleaning pass.
type CleanConfig struct {
	// Phi is the Levenshtein similarity threshold ϕ in [0,1]; a referenced
	// address replaces the original when similarity ≥ ϕ.
	Phi float64
	// Beam bounds the blocking-index candidate list (0 means default 32).
	Beam int
}

// DefaultCleanConfig uses ϕ = 0.8 and the default beam.
func DefaultCleanConfig() CleanConfig {
	return CleanConfig{Phi: 0.8, Beam: 32}
}

// Report summarizes a cleaning pass.
type Report struct {
	Rows       int
	Untouched  int
	StreetMap  int
	Geocoded   int
	Unresolved int
	// GeocoderRequests is the number of remote requests consumed,
	// including failed ones.
	GeocoderRequests int
	// Methods records the per-row resolution method.
	Methods []Method
}

// Cleaner reconciles a table's location attributes against a street map
// with a geocoder fallback.
type Cleaner struct {
	mapRef *StreetMap
	remote Geocoder
	cfg    CleanConfig
}

// NewCleaner builds a cleaner. The geocoder may be nil, in which case the
// fallback step is skipped and unresolvable rows stay unresolved.
func NewCleaner(m *StreetMap, remote Geocoder, cfg CleanConfig) (*Cleaner, error) {
	if m == nil {
		return nil, fmt.Errorf("geocode: cleaner needs a street map")
	}
	if cfg.Phi < 0 || cfg.Phi > 1 {
		return nil, fmt.Errorf("geocode: phi %v out of [0,1]", cfg.Phi)
	}
	if cfg.Beam <= 0 {
		cfg.Beam = 32
	}
	return &Cleaner{mapRef: m, remote: remote, cfg: cfg}, nil
}

// Clean reconciles the location attributes of t in place: address,
// house_number, zip_code, latitude and longitude are rewritten from the
// matched reference entry. It returns the per-row report.
//
// The multi-step algorithm follows §2.1.1: (1) normalize the free-text
// address; (2) find the most similar referenced street via the blocking
// index; (3) if similarity ≥ ϕ adopt the referenced address and
// reconstruct ZIP code, house number and coordinates from the registry;
// (4) otherwise fall back to the remote geocoder while quota lasts.
func (c *Cleaner) Clean(t *table.Table) (*Report, error) {
	addr, err := t.Strings(epc.AttrAddress)
	if err != nil {
		return nil, fmt.Errorf("geocode: clean: %w", err)
	}
	civic, err := t.Strings(epc.AttrHouseNumber)
	if err != nil {
		return nil, fmt.Errorf("geocode: clean: %w", err)
	}
	if _, err := t.Strings(epc.AttrZIP); err != nil {
		return nil, fmt.Errorf("geocode: clean: %w", err)
	}
	if _, err := t.Floats(epc.AttrLatitude); err != nil {
		return nil, fmt.Errorf("geocode: clean: %w", err)
	}
	if _, err := t.Floats(epc.AttrLongitude); err != nil {
		return nil, fmt.Errorf("geocode: clean: %w", err)
	}

	n := t.NumRows()
	rep := &Report{Rows: n, Methods: make([]Method, n)}
	startRequests := 0
	if c.remote != nil {
		startRequests = c.remote.RequestsUsed()
	}
	for i := 0; i < n; i++ {
		norm := textmatch.NormalizeAddress(addr[i])
		hn := normalizeCivic(civic[i])

		street, sim, ok := c.mapRef.MatchStreet(norm, c.cfg.Beam)
		if ok && sim >= c.cfg.Phi {
			entry, found := c.mapRef.civicFor(street, hn)
			if found {
				if sim == 1 && norm == street {
					rep.Methods[i] = MethodUntouched
					rep.Untouched++
				} else {
					rep.Methods[i] = MethodStreetMap
					rep.StreetMap++
				}
				if err := c.apply(t, i, entry); err != nil {
					return nil, err
				}
				continue
			}
		}
		// Fallback: remote geocoder, quota permitting.
		if c.remote != nil {
			entry, gerr := c.remote.Geocode(addr[i] + " " + civic[i])
			if gerr == nil {
				rep.Methods[i] = MethodGeocoder
				rep.Geocoded++
				if err := c.apply(t, i, entry); err != nil {
					return nil, err
				}
				continue
			}
		}
		rep.Methods[i] = MethodUnresolved
		rep.Unresolved++
	}
	if c.remote != nil {
		rep.GeocoderRequests = c.remote.RequestsUsed() - startRequests
	}
	return rep, nil
}

// apply rewrites a row's location attributes from a reference entry.
func (c *Cleaner) apply(t *table.Table, row int, e ReferenceEntry) error {
	if err := t.SetString(epc.AttrAddress, row, e.Street); err != nil {
		return err
	}
	if err := t.SetString(epc.AttrHouseNumber, row, e.HouseNumber); err != nil {
		return err
	}
	if err := t.SetString(epc.AttrZIP, row, e.ZIP); err != nil {
		return err
	}
	if err := t.SetFloat(epc.AttrLatitude, row, e.Point.Lat); err != nil {
		return err
	}
	return t.SetFloat(epc.AttrLongitude, row, e.Point.Lon)
}
