package geocode

import (
	"sync"

	"indice/internal/textmatch"
)

// CachedGeocoder wraps a Geocoder with a normalized-address memo so
// repeated addresses (several certificates in one building, re-runs over
// the same dump) consume the free-request quota only once. Failed lookups
// are cached too — ErrNotFound is deterministic for a given address, and
// retrying it would only burn quota — except quota errors, which must
// surface again once the budget is refilled.
type CachedGeocoder struct {
	inner Geocoder

	mu     sync.Mutex
	hits   int
	misses int
	byAddr map[string]cachedResult
}

type cachedResult struct {
	entry ReferenceEntry
	err   error
}

// NewCachedGeocoder wraps inner.
func NewCachedGeocoder(inner Geocoder) *CachedGeocoder {
	return &CachedGeocoder{
		inner:  inner,
		byAddr: make(map[string]cachedResult),
	}
}

// Geocode implements Geocoder with memoization.
func (g *CachedGeocoder) Geocode(address string) (ReferenceEntry, error) {
	key := textmatch.NormalizeAddress(address)
	g.mu.Lock()
	if res, ok := g.byAddr[key]; ok {
		g.hits++
		g.mu.Unlock()
		return res.entry, res.err
	}
	g.mu.Unlock()

	entry, err := g.inner.Geocode(address)
	if err == ErrQuotaExceeded {
		// Not cacheable: a future call may have budget again.
		return ReferenceEntry{}, err
	}

	g.mu.Lock()
	g.misses++
	g.byAddr[key] = cachedResult{entry: entry, err: err}
	g.mu.Unlock()
	return entry, err
}

// RequestsUsed implements Geocoder: the remote requests actually consumed.
func (g *CachedGeocoder) RequestsUsed() int {
	return g.inner.RequestsUsed()
}

// Stats reports cache hits and misses.
func (g *CachedGeocoder) Stats() (hits, misses int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}
