// Package geocode implements the geospatial cleaning step of INDICE
// (§2.1.1): reconciliation of free-text EPC addresses against a referenced
// street map via normalized Levenshtein similarity with threshold ϕ, and a
// remote-geocoder fallback (standing in for the Google Geocoding API) that
// is consulted only when the street map cannot resolve the address,
// because of its request quota.
package geocode

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"indice/internal/geo"
	"indice/internal/textmatch"
)

// ReferenceEntry is one row of the referenced street map.
type ReferenceEntry struct {
	Street      string // normalized street name
	HouseNumber string
	ZIP         string
	Point       geo.Point
}

// StreetMap is the referenced street registry with its blocking index.
type StreetMap struct {
	streets []string                    // unique normalized street names
	byName  map[string][]ReferenceEntry // street -> civics
	index   *textmatch.Index
}

// NewStreetMap indexes the given entries. Street names are normalized with
// textmatch.NormalizeAddress before indexing.
func NewStreetMap(entries []ReferenceEntry) (*StreetMap, error) {
	if len(entries) == 0 {
		return nil, errors.New("geocode: empty street map")
	}
	byName := make(map[string][]ReferenceEntry)
	for _, e := range entries {
		norm := textmatch.NormalizeAddress(e.Street)
		if norm == "" {
			return nil, fmt.Errorf("geocode: entry with empty street name: %+v", e)
		}
		e.Street = norm
		byName[norm] = append(byName[norm], e)
	}
	streets := make([]string, 0, len(byName))
	for s := range byName {
		streets = append(streets, s)
	}
	sort.Strings(streets)
	return &StreetMap{
		streets: streets,
		byName:  byName,
		index:   textmatch.NewIndex(3, streets),
	}, nil
}

// NumStreets returns the number of distinct streets.
func (m *StreetMap) NumStreets() int { return len(m.streets) }

// Lookup returns the reference entry for an exact (normalized street,
// house number) pair.
func (m *StreetMap) Lookup(street, houseNumber string) (ReferenceEntry, bool) {
	for _, e := range m.byName[textmatch.NormalizeAddress(street)] {
		if e.HouseNumber == houseNumber {
			return e, true
		}
	}
	return ReferenceEntry{}, false
}

// MatchStreet finds the referenced street most similar to the query and
// returns it with the Levenshtein similarity. The beam width bounds the
// candidate list examined.
func (m *StreetMap) MatchStreet(query string, beam int) (string, float64, bool) {
	norm := textmatch.NormalizeAddress(query)
	if norm == "" {
		return "", 0, false
	}
	best, ok := m.index.Best(norm, beam)
	if !ok {
		return "", 0, false
	}
	return best.Entry, best.Similarity, true
}

// MatchStreetExhaustive is the ablation counterpart of MatchStreet: it
// scans every registered street instead of using the blocking index.
func (m *StreetMap) MatchStreetExhaustive(query string) (string, float64, bool) {
	norm := textmatch.NormalizeAddress(query)
	if norm == "" {
		return "", 0, false
	}
	best, ok := m.index.BestExhaustive(norm)
	if !ok {
		return "", 0, false
	}
	return best.Entry, best.Similarity, true
}

// civicFor returns the reference entry of the civic on a street; when the
// exact civic is absent it falls back to the nearest lower civic, then the
// first entry, mirroring how municipal registries interpolate.
func (m *StreetMap) civicFor(street, houseNumber string) (ReferenceEntry, bool) {
	civics := m.byName[street]
	if len(civics) == 0 {
		return ReferenceEntry{}, false
	}
	for _, e := range civics {
		if e.HouseNumber == houseNumber {
			return e, true
		}
	}
	// Nearest numeric civic below the requested one.
	want := civicNumber(houseNumber)
	best := -1
	for i, e := range civics {
		n := civicNumber(e.HouseNumber)
		if n <= want && (best < 0 || n > civicNumber(civics[best].HouseNumber)) {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return civics[best], true
}

func civicNumber(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// Geocoder is a remote geocoding service: given a free-text address it
// returns the authoritative entry. Implementations may fail or run out of
// quota.
type Geocoder interface {
	// Geocode resolves a free-text address to a reference entry.
	Geocode(address string) (ReferenceEntry, error)
	// RequestsUsed reports how many requests were consumed.
	RequestsUsed() int
}

// ErrQuotaExceeded is returned by a Geocoder whose free-request budget is
// exhausted, the condition that forces INDICE to prefer the street map.
var ErrQuotaExceeded = errors.New("geocode: request quota exceeded")

// ErrNotFound is returned when the geocoder cannot resolve an address.
var ErrNotFound = errors.New("geocode: address not found")

// MockGeocoder simulates the Google Geocoding API over the ground-truth
// street map: perfect resolution (it fuzzy-matches with a wide beam and no
// threshold) but a hard request quota.
type MockGeocoder struct {
	m     *StreetMap
	quota int
	used  int
}

// NewMockGeocoder wraps a street map with a request quota. A negative
// quota means unlimited.
func NewMockGeocoder(m *StreetMap, quota int) *MockGeocoder {
	return &MockGeocoder{m: m, quota: quota}
}

// Geocode implements Geocoder.
func (g *MockGeocoder) Geocode(address string) (ReferenceEntry, error) {
	if g.quota >= 0 && g.used >= g.quota {
		return ReferenceEntry{}, ErrQuotaExceeded
	}
	g.used++
	norm := textmatch.NormalizeAddress(address)
	streetPart, civic := textmatch.SplitHouseNumber(norm)
	best, ok := g.m.index.Best(streetPart, 64)
	if !ok {
		return ReferenceEntry{}, ErrNotFound
	}
	// The remote service resolves anything plausibly close.
	if best.Similarity < 0.4 {
		return ReferenceEntry{}, ErrNotFound
	}
	e, ok := g.m.civicFor(best.Entry, civic)
	if !ok {
		return ReferenceEntry{}, ErrNotFound
	}
	return e, nil
}

// RequestsUsed implements Geocoder.
func (g *MockGeocoder) RequestsUsed() int { return g.used }

// normalizeCivic strips separators from a civic number ("12/B" -> "12b").
func normalizeCivic(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= '0' && r <= '9' || r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
