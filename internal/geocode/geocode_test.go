package geocode

import (
	"errors"
	"testing"

	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/synth"
	"indice/internal/table"
)

func refEntries() []ReferenceEntry {
	return []ReferenceEntry{
		{Street: "Via Roma", HouseNumber: "1", ZIP: "10101", Point: geo.Point{Lat: 45.01, Lon: 7.61}},
		{Street: "Via Roma", HouseNumber: "2", ZIP: "10101", Point: geo.Point{Lat: 45.011, Lon: 7.611}},
		{Street: "Via Roma", HouseNumber: "10", ZIP: "10101", Point: geo.Point{Lat: 45.012, Lon: 7.612}},
		{Street: "Corso Vittorio Emanuele", HouseNumber: "5", ZIP: "10102", Point: geo.Point{Lat: 45.02, Lon: 7.62}},
		{Street: "Piazza Castello", HouseNumber: "1", ZIP: "10103", Point: geo.Point{Lat: 45.03, Lon: 7.63}},
	}
}

func TestNewStreetMap(t *testing.T) {
	m, err := NewStreetMap(refEntries())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStreets() != 3 {
		t.Fatalf("streets = %d", m.NumStreets())
	}
	if _, err := NewStreetMap(nil); err == nil {
		t.Fatal("want error for empty map")
	}
	if _, err := NewStreetMap([]ReferenceEntry{{Street: "  "}}); err == nil {
		t.Fatal("want error for blank street")
	}
}

func TestLookup(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	e, ok := m.Lookup("via roma", "2")
	if !ok || e.ZIP != "10101" || e.HouseNumber != "2" {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	// Case/normalization-insensitive.
	if _, ok := m.Lookup("VIA ROMA", "1"); !ok {
		t.Fatal("case-sensitive lookup")
	}
	if _, ok := m.Lookup("via roma", "99"); ok {
		t.Fatal("missing civic matched")
	}
}

func TestMatchStreet(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	s, sim, ok := m.MatchStreet("via rona", 16)
	if !ok || s != "via roma" {
		t.Fatalf("match = %q, %v, %v", s, sim, ok)
	}
	if sim <= 0.8 {
		t.Fatalf("similarity = %v", sim)
	}
	if _, _, ok := m.MatchStreet("", 16); ok {
		t.Fatal("empty query matched")
	}
}

func TestCivicFallback(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	// Civic 5 is absent from via roma: nearest lower is 2.
	e, ok := m.civicFor("via roma", "5")
	if !ok || e.HouseNumber != "2" {
		t.Fatalf("civicFor = %+v, %v", e, ok)
	}
	// Below the lowest civic: first entry.
	e, ok = m.civicFor("via roma", "0")
	if !ok || e.HouseNumber != "1" {
		t.Fatalf("civicFor(0) = %+v", e)
	}
	if _, ok := m.civicFor("ghost street", "1"); ok {
		t.Fatal("unknown street matched")
	}
}

func TestMockGeocoder(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	g := NewMockGeocoder(m, 2)
	e, err := g.Geocode("Via Rma 2") // heavy typo, still resolvable
	if err != nil {
		t.Fatal(err)
	}
	if e.Street != "via roma" || e.HouseNumber != "2" {
		t.Fatalf("geocode = %+v", e)
	}
	if _, err := g.Geocode("Piazza Castello 1"); err != nil {
		t.Fatal(err)
	}
	// Quota exhausted.
	if _, err := g.Geocode("Via Roma 1"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want quota exceeded", err)
	}
	if g.RequestsUsed() != 2 {
		t.Fatalf("requests = %d", g.RequestsUsed())
	}
}

func TestMockGeocoderNotFound(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	g := NewMockGeocoder(m, -1)
	if _, err := g.Geocode("zzzzqqqq wwww 7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want not found", err)
	}
}

// locTable builds a minimal table with the five location attributes.
func locTable(t *testing.T, addrs, civics, zips []string, lats, lons []float64) *table.Table {
	t.Helper()
	tab := table.New()
	for _, step := range []error{
		tab.AddStrings(epc.AttrAddress, addrs),
		tab.AddStrings(epc.AttrHouseNumber, civics),
		tab.AddStrings(epc.AttrZIP, zips),
		tab.AddFloats(epc.AttrLatitude, lats),
		tab.AddFloats(epc.AttrLongitude, lons),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	return tab
}

func TestCleanerResolvesTypos(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	cl, err := NewCleaner(m, NewMockGeocoder(m, 100), DefaultCleanConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := locTable(t,
		[]string{"via roma", "via rona", "totally wrong xyzw"},
		[]string{"1", "2", "5"},
		[]string{"", "99999", ""},
		[]float64{0, 0, 0},
		[]float64{0, 0, 0},
	)
	rep, err := cl.Clean(tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 3 {
		t.Fatalf("rows = %d", rep.Rows)
	}
	if rep.Untouched != 1 || rep.StreetMap != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Geocoded+rep.Unresolved != 1 {
		t.Fatalf("report = %+v", rep)
	}
	addr, _ := tab.Strings(epc.AttrAddress)
	if addr[1] != "via roma" {
		t.Fatalf("typo not fixed: %q", addr[1])
	}
	zips, _ := tab.Strings(epc.AttrZIP)
	if zips[0] != "10101" || zips[1] != "10101" {
		t.Fatalf("zips not reconstructed: %v", zips)
	}
	lat, _ := tab.Floats(epc.AttrLatitude)
	if lat[0] != 45.01 {
		t.Fatalf("coords not reconstructed: %v", lat[0])
	}
	if rep.Methods[0] != MethodUntouched || rep.Methods[1] != MethodStreetMap {
		t.Fatalf("methods = %v", rep.Methods)
	}
}

func TestCleanerGeocoderFallbackOnlyBelowPhi(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	g := NewMockGeocoder(m, 100)
	cfg := DefaultCleanConfig()
	cfg.Phi = 0.95 // strict: one-edit typos fall below phi on short names
	cl, _ := NewCleaner(m, g, cfg)
	tab := locTable(t,
		[]string{"via rona"}, []string{"2"}, []string{""}, []float64{0}, []float64{0},
	)
	rep, err := cl.Clean(tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Geocoded != 1 || rep.GeocoderRequests != 1 {
		t.Fatalf("report = %+v", rep)
	}
	addr, _ := tab.Strings(epc.AttrAddress)
	if addr[0] != "via roma" {
		t.Fatalf("fallback did not fix: %q", addr[0])
	}
}

func TestCleanerNoGeocoder(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	cl, _ := NewCleaner(m, nil, DefaultCleanConfig())
	tab := locTable(t,
		[]string{"qqqq zzzz wwww"}, []string{"1"}, []string{""}, []float64{0}, []float64{0},
	)
	rep, err := cl.Clean(tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Methods[0] != MethodUnresolved {
		t.Fatalf("methods = %v", rep.Methods)
	}
}

func TestCleanerQuotaExhaustion(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	g := NewMockGeocoder(m, 1)
	cl, _ := NewCleaner(m, g, DefaultCleanConfig())
	tab := locTable(t,
		[]string{"xxxx yyyy zzzz", "wwww vvvv uuuu"},
		[]string{"1", "1"},
		[]string{"", ""},
		[]float64{0, 0},
		[]float64{0, 0},
	)
	rep, err := cl.Clean(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Both rows need the fallback; only one request is available and it
	// fails to resolve garbage, so both stay unresolved, but only one
	// request may be consumed... the mock consumes a request per call
	// until quota, so expect 1 consumed + quota errors after.
	if rep.Unresolved != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if g.RequestsUsed() != 1 {
		t.Fatalf("requests = %d", g.RequestsUsed())
	}
}

func TestCleanerValidation(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	if _, err := NewCleaner(nil, nil, DefaultCleanConfig()); err == nil {
		t.Fatal("want error for nil map")
	}
	if _, err := NewCleaner(m, nil, CleanConfig{Phi: 2}); err == nil {
		t.Fatal("want error for bad phi")
	}
	cl, _ := NewCleaner(m, nil, DefaultCleanConfig())
	if _, err := cl.Clean(table.New()); err == nil {
		t.Fatal("want error for table without location columns")
	}
}

func TestCleanerEndToEndSynthetic(t *testing.T) {
	// Full pipeline over the synthetic city: corrupt then clean, and
	// measure that cleaning recovers most damaged addresses.
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 60, 12
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = 1200
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	dirty, truth, err := synth.Corrupt(ds.Table, synth.DefaultCorruptionConfig())
	if err != nil {
		t.Fatal(err)
	}

	entries := make([]ReferenceEntry, len(city.Entries))
	for i, e := range city.Entries {
		entries[i] = ReferenceEntry{Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point}
	}
	m, err := NewStreetMap(entries)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCleaner(m, NewMockGeocoder(m, 500), DefaultCleanConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved > rep.Rows/20 {
		t.Fatalf("unresolved = %d of %d", rep.Unresolved, rep.Rows)
	}

	// Recovery rate over rows with planted typos.
	addr, _ := dirty.Strings(epc.AttrAddress)
	recovered := 0
	for _, r := range truth.TypoRows {
		if addr[r] == truth.Address[r] {
			recovered++
		}
	}
	rate := float64(recovered) / float64(len(truth.TypoRows))
	if rate < 0.9 {
		t.Fatalf("typo recovery rate = %.3f (%d/%d)", rate, recovered, len(truth.TypoRows))
	}
}

func BenchmarkCleanerClean(b *testing.B) {
	ccfg := synth.DefaultCityConfig()
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = 2000
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		b.Fatal(err)
	}
	dirty, _, err := synth.Corrupt(ds.Table, synth.DefaultCorruptionConfig())
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]ReferenceEntry, len(city.Entries))
	for i, e := range city.Entries {
		entries[i] = ReferenceEntry{Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point}
	}
	m, err := NewStreetMap(entries)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := dirty.Clone()
		cl, _ := NewCleaner(m, NewMockGeocoder(m, 1000), DefaultCleanConfig())
		if _, err := cl.Clean(work); err != nil {
			b.Fatal(err)
		}
	}
}
