package geocode

import (
	"errors"
	"sync"
	"testing"
)

func TestCachedGeocoderMemoizes(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	inner := NewMockGeocoder(m, 10)
	g := NewCachedGeocoder(inner)

	e1, err := g.Geocode("Via Roma 2")
	if err != nil {
		t.Fatal(err)
	}
	// Repeats, including differently-cased variants that normalize the
	// same, must not consume quota.
	for i := 0; i < 5; i++ {
		e2, err := g.Geocode("VIA ROMA 2")
		if err != nil {
			t.Fatal(err)
		}
		if e2 != e1 {
			t.Fatalf("cached result differs: %+v vs %+v", e2, e1)
		}
	}
	if g.RequestsUsed() != 1 {
		t.Fatalf("requests = %d, want 1", g.RequestsUsed())
	}
	hits, misses := g.Stats()
	if hits != 5 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
}

func TestCachedGeocoderCachesNotFound(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	inner := NewMockGeocoder(m, 10)
	g := NewCachedGeocoder(inner)
	if _, err := g.Geocode("qqqq wwww zzzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Geocode("qqqq wwww zzzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cached err = %v", err)
	}
	if g.RequestsUsed() != 1 {
		t.Fatalf("requests = %d, want 1 (not-found cached)", g.RequestsUsed())
	}
}

func TestCachedGeocoderQuotaNotCached(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	inner := NewMockGeocoder(m, 0) // immediately out of quota
	g := NewCachedGeocoder(inner)
	if _, err := g.Geocode("Via Roma 1"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
	// Quota errors must not poison the cache: with a fresh inner budget
	// the same address resolves.
	g2 := NewCachedGeocoder(NewMockGeocoder(m, 5))
	if _, err := g2.Geocode("Via Roma 1"); err != nil {
		t.Fatalf("fresh budget: %v", err)
	}
	_, misses := g.Stats()
	if misses != 0 {
		t.Fatalf("quota failure recorded as miss: %d", misses)
	}
}

func TestCachedGeocoderConcurrent(t *testing.T) {
	m, _ := NewStreetMap(refEntries())
	g := NewCachedGeocoder(NewMockGeocoder(m, 1000))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := g.Geocode("Piazza Castello 1"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// At most a handful of remote requests despite 400 calls (a few may
	// race past the memo on the first fill).
	if g.RequestsUsed() > 8 {
		t.Fatalf("requests = %d", g.RequestsUsed())
	}
}

func TestCleanerWithCachedGeocoder(t *testing.T) {
	// The cleaner composes transparently with the cache: multiple
	// certificates on the same unresolvable-by-map street consume one
	// remote request.
	m, _ := NewStreetMap(refEntries())
	inner := NewMockGeocoder(m, 10)
	g := NewCachedGeocoder(inner)
	cfg := DefaultCleanConfig()
	cfg.Phi = 0.99 // force the fallback for typos
	cl, err := NewCleaner(m, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := locTable(t,
		[]string{"via rona", "via rona", "via rona"},
		[]string{"2", "2", "2"},
		[]string{"", "", ""},
		[]float64{0, 0, 0},
		[]float64{0, 0, 0},
	)
	rep, err := cl.Clean(tab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Geocoded != 3 {
		t.Fatalf("geocoded = %d", rep.Geocoded)
	}
	if inner.RequestsUsed() != 1 {
		t.Fatalf("remote requests = %d, want 1 via cache", inner.RequestsUsed())
	}
}
