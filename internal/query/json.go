package query

import (
	"encoding/json"
	"fmt"
	"math"
)

// predJSON is the wire shape of one predicate node. Exactly the fields
// of the node's op are set:
//
//	{"op":"range","attr":"eph","min":50,"max":150}   // omit min/max for ∓Inf
//	{"op":"in","attr":"district","values":["D1"]}
//	{"op":"and","args":[…]}  {"op":"or","args":[…]}
//	{"op":"not","arg":…}
type predJSON struct {
	Op     string            `json:"op"`
	Attr   string            `json:"attr,omitempty"`
	Min    *float64          `json:"min,omitempty"`
	Max    *float64          `json:"max,omitempty"`
	Values []string          `json:"values,omitempty"`
	Args   []json.RawMessage `json:"args,omitempty"`
	Arg    json.RawMessage   `json:"arg,omitempty"`
}

// MarshalPredicate encodes a predicate tree as JSON for programmatic
// clients. Infinite range bounds are encoded by omission (JSON has no
// Inf); NaN bounds are an error.
func MarshalPredicate(p Predicate) ([]byte, error) {
	node, err := toJSON(p)
	if err != nil {
		return nil, fmt.Errorf("query: marshal: %w", err)
	}
	return json.Marshal(node)
}

func toJSON(p Predicate) (*predJSON, error) {
	marshalArgs := func(subs []Predicate) ([]json.RawMessage, error) {
		args := make([]json.RawMessage, len(subs))
		for i, sub := range subs {
			raw, err := MarshalPredicate(sub)
			if err != nil {
				return nil, err
			}
			args[i] = raw
		}
		return args, nil
	}
	switch p := p.(type) {
	case NumRange:
		if math.IsNaN(p.Min) || math.IsNaN(p.Max) {
			return nil, fmt.Errorf("NaN range bound on %q", p.Attr)
		}
		node := &predJSON{Op: "range", Attr: p.Attr}
		if !math.IsInf(p.Min, -1) {
			min := p.Min
			node.Min = &min
		}
		if !math.IsInf(p.Max, 1) {
			max := p.Max
			node.Max = &max
		}
		return node, nil
	case In:
		vals := p.Values
		if vals == nil {
			vals = []string{}
		}
		return &predJSON{Op: "in", Attr: p.Attr, Values: vals}, nil
	case And:
		args, err := marshalArgs(p)
		if err != nil {
			return nil, err
		}
		return &predJSON{Op: "and", Args: args}, nil
	case Or:
		args, err := marshalArgs(p)
		if err != nil {
			return nil, err
		}
		return &predJSON{Op: "or", Args: args}, nil
	case Not:
		raw, err := MarshalPredicate(p.P)
		if err != nil {
			return nil, err
		}
		return &predJSON{Op: "not", Arg: raw}, nil
	}
	return nil, fmt.Errorf("unsupported predicate type %T", p)
}

// UnmarshalPredicate decodes the JSON predicate encoding back into a
// Predicate tree.
func UnmarshalPredicate(data []byte) (Predicate, error) {
	p, err := fromJSON(data, 0)
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal: %w", err)
	}
	return p, nil
}

func fromJSON(data []byte, depth int) (Predicate, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("predicate nested deeper than %d", maxParseDepth)
	}
	var node predJSON
	if err := json.Unmarshal(data, &node); err != nil {
		return nil, err
	}
	unmarshalArgs := func() ([]Predicate, error) {
		if len(node.Args) == 0 {
			return nil, fmt.Errorf("%s needs a non-empty args array", node.Op)
		}
		subs := make([]Predicate, len(node.Args))
		for i, raw := range node.Args {
			sub, err := fromJSON(raw, depth+1)
			if err != nil {
				return nil, err
			}
			subs[i] = sub
		}
		return subs, nil
	}
	switch node.Op {
	case "range":
		if node.Attr == "" {
			return nil, fmt.Errorf("range needs an attr")
		}
		p := NumRange{Attr: node.Attr, Min: math.Inf(-1), Max: math.Inf(1)}
		if node.Min != nil {
			p.Min = *node.Min
		}
		if node.Max != nil {
			p.Max = *node.Max
		}
		return p, nil
	case "in":
		if node.Attr == "" {
			return nil, fmt.Errorf("in needs an attr")
		}
		if len(node.Values) == 0 {
			return nil, fmt.Errorf("in needs a non-empty values array")
		}
		return In{Attr: node.Attr, Values: node.Values}, nil
	case "and":
		subs, err := unmarshalArgs()
		if err != nil {
			return nil, err
		}
		return And(subs), nil
	case "or":
		subs, err := unmarshalArgs()
		if err != nil {
			return nil, err
		}
		return Or(subs), nil
	case "not":
		if len(node.Arg) == 0 {
			return nil, fmt.Errorf("not needs an arg")
		}
		sub, err := fromJSON(node.Arg, depth+1)
		if err != nil {
			return nil, err
		}
		return Not{P: sub}, nil
	case "":
		return nil, fmt.Errorf("missing op")
	}
	return nil, fmt.Errorf("unknown op %q", node.Op)
}
