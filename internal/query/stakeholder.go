package query

import (
	"fmt"

	"indice/internal/epc"
	"indice/internal/geo"
)

// Stakeholder identifies an INDICE end-user category (§2.2.1).
type Stakeholder string

// The three stakeholder categories of the paper.
const (
	// Citizen explores buildings in areas of interest, e.g. to buy an
	// energy-efficient flat.
	Citizen Stakeholder = "citizen"
	// PublicAdministration identifies areas to promote and fund energy
	// renovations.
	PublicAdministration Stakeholder = "public-administration"
	// EnergyScientist benchmarks homogeneous building groups with
	// supervised and unsupervised techniques.
	EnergyScientist Stakeholder = "energy-scientist"
)

// Stakeholders lists every stakeholder category, in presentation order.
func Stakeholders() []Stakeholder {
	return []Stakeholder{Citizen, PublicAdministration, EnergyScientist}
}

// ParseStakeholder converts a name to a Stakeholder.
func ParseStakeholder(s string) (Stakeholder, error) {
	switch Stakeholder(s) {
	case Citizen, PublicAdministration, EnergyScientist:
		return Stakeholder(s), nil
	case "pa":
		return PublicAdministration, nil
	}
	return "", fmt.Errorf("query: unknown stakeholder %q", s)
}

// ReportKind enumerates the report/visualization types INDICE proposes.
type ReportKind string

// The report kinds the dashboards assemble.
const (
	ReportChoropleth    ReportKind = "choropleth-map"
	ReportScatterMap    ReportKind = "scatter-map"
	ReportClusterMarker ReportKind = "cluster-marker-map"
	ReportDistribution  ReportKind = "frequency-distribution"
	ReportRules         ReportKind = "association-rules"
	ReportCorrelation   ReportKind = "correlation-matrix"
	ReportClusterering  ReportKind = "cluster-analysis"
)

// Proposal is the automatic per-stakeholder analysis proposal: "based on
// the target of each stakeholder, the system is able to automatically
// propose to the specific end-user an optimal set of interesting reports
// and graphical representations".
type Proposal struct {
	Stakeholder Stakeholder
	// Attributes is the default attribute subset shown.
	Attributes []string
	// Response is the default response variable for coloring.
	Response string
	// Level is the default spatial granularity.
	Level geo.Level
	// Reports is the ordered set of proposed report kinds.
	Reports []ReportKind
	// Selection is the default data selection.
	Selection Predicate
}

// ProposalFor returns the default proposal of a stakeholder. Users can
// still override every field manually, as the paper specifies.
func ProposalFor(s Stakeholder) (Proposal, error) {
	switch s {
	case Citizen:
		// Citizens care about where efficient buildings are: energy class
		// and heating demand at fine granularity.
		return Proposal{
			Stakeholder: s,
			Attributes:  []string{epc.AttrEPH, epc.AttrUWindows, epc.AttrHeatSurface},
			Response:    epc.AttrEPH,
			Level:       geo.LevelNeighbourhood,
			Reports: []ReportKind{
				ReportChoropleth, ReportScatterMap, ReportDistribution,
			},
			Selection: Residential(),
		}, nil
	case PublicAdministration:
		// The paper's case study: thermo-physical subset, cluster
		// analysis, district-level energy maps.
		return Proposal{
			Stakeholder: s,
			Attributes:  append([]string(nil), epc.CaseStudyAttributes...),
			Response:    epc.AttrEPH,
			Level:       geo.LevelDistrict,
			Reports: []ReportKind{
				ReportCorrelation, ReportClusterering, ReportClusterMarker,
				ReportDistribution, ReportRules,
			},
			Selection: Residential(),
		}, nil
	case EnergyScientist:
		// Scientists get the full analytic stack at every granularity.
		return Proposal{
			Stakeholder: s,
			Attributes: append(append([]string(nil), epc.CaseStudyAttributes...),
				epc.AttrEPH, "generation_efficiency", "distribution_efficiency"),
			Response: epc.AttrEPH,
			Level:    geo.LevelUnit,
			Reports: []ReportKind{
				ReportCorrelation, ReportClusterering, ReportRules,
				ReportDistribution, ReportScatterMap, ReportChoropleth,
				ReportClusterMarker,
			},
			Selection: nil, // scientists start from the full collection
		}, nil
	}
	return Proposal{}, fmt.Errorf("query: unknown stakeholder %q", s)
}
