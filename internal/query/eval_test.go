package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indice/internal/table"
)

// evalTestTable builds a table with numeric and categorical columns,
// including invalid cells, so UNKNOWN rows exercise the Kleene paths.
func evalTestTable(rng *rand.Rand, rows int) *table.Table {
	t := table.New()
	eph := make([]float64, rows)
	for i := range eph {
		if rng.Intn(6) == 0 {
			eph[i] = math.NaN() // invalid
		} else {
			eph[i] = rng.Float64() * 300
		}
	}
	cls := make([]string, rows)
	clsValid := make([]bool, rows)
	for i := range cls {
		cls[i] = fmt.Sprintf("C%d", rng.Intn(4))
		clsValid[i] = rng.Intn(8) != 0
	}
	if err := t.AddFloats("eph", eph); err != nil {
		panic(err)
	}
	if err := t.AddStringsValid("class", cls, clsValid); err != nil {
		panic(err)
	}
	return t
}

// randEvalPredicate draws a random predicate tree over the test schema.
func randEvalPredicate(rng *rand.Rand, depth int) Predicate {
	if depth > 0 {
		switch rng.Intn(4) {
		case 0:
			return Not{P: randEvalPredicate(rng, depth-1)}
		case 1:
			and := make(And, 1+rng.Intn(3))
			for i := range and {
				and[i] = randEvalPredicate(rng, depth-1)
			}
			return and
		case 2:
			or := make(Or, 1+rng.Intn(3))
			for i := range or {
				or[i] = randEvalPredicate(rng, depth-1)
			}
			return or
		}
	}
	if rng.Intn(2) == 0 {
		lo := rng.Float64() * 300
		return NumRange{Attr: "eph", Min: lo, Max: lo + rng.Float64()*150}
	}
	vals := make([]string, 1+rng.Intn(3))
	for i := range vals {
		vals[i] = fmt.Sprintf("C%d", rng.Intn(5))
	}
	return In{Attr: "class", Values: vals}
}

// TestEvaluatorMatchesPredicateMask pins the compiled evaluator bitwise
// against the naive Predicate.Mask over random trees and tables, reusing
// one evaluator across tables of different sizes (the segment-scan
// pattern the store planner runs).
func TestEvaluatorMatchesPredicateMask(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		p := randEvalPredicate(rng, 3)
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		for seg := 0; seg < 4; seg++ {
			tab := evalTestTable(rng, 1+rng.Intn(200))
			want, err := p.Mask(tab)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.Mask(tab)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d seg %d: mask len %d, want %d", trial, seg, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d seg %d (%s): row %d = %v, want %v",
						trial, seg, p.String(), i, got[i], want[i])
				}
			}
		}
	}
}

func TestEvaluatorErrors(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Fatal("want error for nil predicate")
	}
	tab := evalTestTable(rand.New(rand.NewSource(1)), 10)
	for _, p := range []Predicate{
		NumRange{Attr: "missing", Min: 0, Max: 1},
		In{Attr: "missing", Values: []string{"x"}},
		And{},
		Or{},
		Not{P: And{}},
	} {
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Mask(tab); err == nil {
			t.Fatalf("want error for %T", p)
		}
	}
}

// opaquePredicate is a Predicate implemented outside the DSL types; the
// evaluator must fall back to its two-valued Mask exactly like evalTri.
type opaquePredicate struct{ keepEven bool }

func (o opaquePredicate) Mask(t *table.Table) ([]bool, error) {
	m := make([]bool, t.NumRows())
	for i := range m {
		m[i] = (i%2 == 0) == o.keepEven
	}
	return m, nil
}

func (o opaquePredicate) String() string { return "opaque()" }

func TestEvaluatorOpaqueFallback(t *testing.T) {
	tab := evalTestTable(rand.New(rand.NewSource(2)), 21)
	p := And{opaquePredicate{keepEven: true}, NumRange{Attr: "eph", Min: 0, Max: 300}}
	want, err := p.Mask(tab)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Mask(tab)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// BenchmarkEvaluatorSegments measures the compiled evaluator against the
// naive per-segment Mask on the planner's fallback-scan access pattern:
// one predicate, many segments.
func BenchmarkEvaluatorSegments(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	segs := make([]*table.Table, 16)
	for i := range segs {
		segs[i] = evalTestTable(rng, 4096)
	}
	p := And{
		In{Attr: "class", Values: []string{"C1", "C2"}},
		NumRange{Attr: "eph", Min: 40, Max: 220},
		Not{P: NumRange{Attr: "eph", Min: 100, Max: 120}},
	}
	b.Run("compiled", func(b *testing.B) {
		ev, err := NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Mask(segs[i%len(segs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Mask(segs[i%len(segs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
