// Package query implements the INDICE querying engine (§2.2.1): a
// predicate DSL for selecting EPC subsets attribute-by-attribute, and the
// stakeholder profiles (citizen, public administration, energy scientist)
// that drive which attributes, granularity and report types the system
// proposes to each end-user.
package query

import (
	"errors"
	"fmt"
	"strings"

	"indice/internal/epc"
	"indice/internal/table"
)

// Predicate selects rows of a table. Implementations must be pure.
type Predicate interface {
	// Mask returns a keep-mask over the table's rows.
	Mask(t *table.Table) ([]bool, error)
	// String renders the predicate for report headers.
	String() string
}

// NumRange keeps rows whose numeric attribute lies in [Min, Max]
// (inclusive). Invalid cells never match.
type NumRange struct {
	Attr     string
	Min, Max float64
}

// Mask implements Predicate.
func (p NumRange) Mask(t *table.Table) ([]bool, error) {
	vals, err := t.Floats(p.Attr)
	if err != nil {
		return nil, err
	}
	valid, _ := t.ValidMask(p.Attr)
	out := make([]bool, len(vals))
	for i, v := range vals {
		out[i] = valid[i] && v >= p.Min && v <= p.Max
	}
	return out, nil
}

// String implements Predicate.
func (p NumRange) String() string {
	return fmt.Sprintf("%s in [%g, %g]", p.Attr, p.Min, p.Max)
}

// In keeps rows whose categorical attribute equals one of the values.
type In struct {
	Attr   string
	Values []string
}

// Mask implements Predicate.
func (p In) Mask(t *table.Table) ([]bool, error) {
	vals, err := t.Strings(p.Attr)
	if err != nil {
		return nil, err
	}
	valid, _ := t.ValidMask(p.Attr)
	set := make(map[string]bool, len(p.Values))
	for _, v := range p.Values {
		set[v] = true
	}
	out := make([]bool, len(vals))
	for i, v := range vals {
		out[i] = valid[i] && set[v]
	}
	return out, nil
}

// String implements Predicate.
func (p In) String() string {
	return fmt.Sprintf("%s in {%s}", p.Attr, strings.Join(p.Values, ", "))
}

// And keeps rows matching every sub-predicate.
type And []Predicate

// Mask implements Predicate.
func (p And) Mask(t *table.Table) ([]bool, error) {
	if len(p) == 0 {
		return nil, errors.New("query: empty conjunction")
	}
	acc, err := p[0].Mask(t)
	if err != nil {
		return nil, err
	}
	for _, sub := range p[1:] {
		m, err := sub.Mask(t)
		if err != nil {
			return nil, err
		}
		for i := range acc {
			acc[i] = acc[i] && m[i]
		}
	}
	return acc, nil
}

// String implements Predicate.
func (p And) String() string {
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " AND ")
}

// Not inverts a predicate.
type Not struct{ P Predicate }

// Mask implements Predicate.
func (p Not) Mask(t *table.Table) ([]bool, error) {
	m, err := p.P.Mask(t)
	if err != nil {
		return nil, err
	}
	for i := range m {
		m[i] = !m[i]
	}
	return m, nil
}

// String implements Predicate.
func (p Not) String() string { return "NOT (" + p.P.String() + ")" }

// Select runs a predicate and materializes the matching subset.
func Select(t *table.Table, p Predicate) (*table.Table, error) {
	mask, err := p.Mask(t)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return t.FilterMask(mask)
}

// Residential is the paper's case-study selection: intended use E.1.1.
func Residential() Predicate {
	return In{Attr: epc.AttrIntendedUse, Values: []string{epc.UseResidential}}
}

// InCity selects certificates of one municipality.
func InCity(city string) Predicate {
	return In{Attr: epc.AttrCity, Values: []string{city}}
}

// InDistrict selects certificates of one district.
func InDistrict(id string) Predicate {
	return In{Attr: epc.AttrDistrict, Values: []string{id}}
}
