// Package query implements the INDICE querying engine (§2.2.1): a
// predicate DSL for selecting EPC subsets attribute-by-attribute, and the
// stakeholder profiles (citizen, public administration, energy scientist)
// that drive which attributes, granularity and report types the system
// proposes to each end-user.
//
// Predicates form a boolean algebra (And/Or/Not) over two leaf
// comparisons: numeric ranges and categorical membership. Evaluation uses
// Kleene three-valued logic over the table's validity masks: a comparison
// against an invalid (missing/NaN) cell is UNKNOWN, not false, so
// negation never resurrects invalid rows — `not(eph in [a,b])` excludes a
// NaN eph cell exactly like the positive form does. Only rows whose final
// truth value is definitively TRUE are selected.
//
// Predicates round-trip through a compact textual form (Parse/String)
// and a JSON encoding (MarshalPredicate/UnmarshalPredicate) for
// programmatic clients.
package query

import (
	"errors"
	"fmt"
	"strings"

	"indice/internal/epc"
	"indice/internal/table"
)

// Predicate selects rows of a table. Implementations must be pure.
type Predicate interface {
	// Mask returns a keep-mask over the table's rows: true exactly for
	// the rows whose three-valued evaluation is definitively TRUE.
	Mask(t *table.Table) ([]bool, error)
	// String renders the predicate in the textual DSL; the output
	// re-parses (Parse) to an equivalent predicate.
	String() string
}

// tri is a per-row Kleene truth assignment. T[i] marks rows that are
// definitively true, F[i] rows that are definitively false; a row with
// neither set is UNKNOWN (its cell was invalid).
type tri struct{ T, F []bool }

// evalTri evaluates a predicate under three-valued logic. Predicate
// implementations outside this package fall back to their two-valued
// Mask (no UNKNOWN rows).
func evalTri(p Predicate, t *table.Table) (tri, error) {
	switch p := p.(type) {
	case NumRange:
		return p.tri(t)
	case In:
		return p.tri(t)
	case And:
		return p.tri(t)
	case Or:
		return p.tri(t)
	case Not:
		return p.tri(t)
	}
	m, err := p.Mask(t)
	if err != nil {
		return tri{}, err
	}
	f := make([]bool, len(m))
	for i, v := range m {
		f[i] = !v
	}
	return tri{T: m, F: f}, nil
}

// NumRange keeps rows whose numeric attribute lies in [Min, Max]
// (inclusive). Invalid cells evaluate UNKNOWN: they never match, under
// negation either.
type NumRange struct {
	Attr     string
	Min, Max float64
}

func (p NumRange) tri(t *table.Table) (tri, error) {
	vals, err := t.Floats(p.Attr)
	if err != nil {
		return tri{}, err
	}
	valid, _ := t.ValidMask(p.Attr)
	tv := tri{T: make([]bool, len(vals)), F: make([]bool, len(vals))}
	for i, v := range vals {
		if !valid[i] {
			continue
		}
		in := v >= p.Min && v <= p.Max
		tv.T[i] = in
		tv.F[i] = !in
	}
	return tv, nil
}

// Mask implements Predicate.
func (p NumRange) Mask(t *table.Table) ([]bool, error) {
	tv, err := p.tri(t)
	return tv.T, err
}

// String implements Predicate.
func (p NumRange) String() string {
	return fmt.Sprintf("%s in [%g, %g]", quoteIdent(p.Attr), p.Min, p.Max)
}

// In keeps rows whose categorical attribute equals one of the values.
// Invalid cells evaluate UNKNOWN: they never match, under negation
// either.
type In struct {
	Attr   string
	Values []string
}

func (p In) tri(t *table.Table) (tri, error) {
	vals, err := t.Strings(p.Attr)
	if err != nil {
		return tri{}, err
	}
	valid, _ := t.ValidMask(p.Attr)
	set := make(map[string]bool, len(p.Values))
	for _, v := range p.Values {
		set[v] = true
	}
	tv := tri{T: make([]bool, len(vals)), F: make([]bool, len(vals))}
	for i, v := range vals {
		if !valid[i] {
			continue
		}
		in := set[v]
		tv.T[i] = in
		tv.F[i] = !in
	}
	return tv, nil
}

// Mask implements Predicate.
func (p In) Mask(t *table.Table) ([]bool, error) {
	tv, err := p.tri(t)
	return tv.T, err
}

// String implements Predicate.
func (p In) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = quoteValue(v)
	}
	return fmt.Sprintf("%s in {%s}", quoteIdent(p.Attr), strings.Join(parts, ", "))
}

// And keeps rows matching every sub-predicate (Kleene conjunction: FALSE
// if any conjunct is FALSE, TRUE if all are TRUE, otherwise UNKNOWN).
type And []Predicate

func (p And) tri(t *table.Table) (tri, error) {
	if len(p) == 0 {
		return tri{}, errors.New("query: empty conjunction")
	}
	acc, err := evalTri(p[0], t)
	if err != nil {
		return tri{}, err
	}
	for _, sub := range p[1:] {
		m, err := evalTri(sub, t)
		if err != nil {
			return tri{}, err
		}
		for i := range acc.T {
			acc.T[i] = acc.T[i] && m.T[i]
			acc.F[i] = acc.F[i] || m.F[i]
		}
	}
	return acc, nil
}

// Mask implements Predicate.
func (p And) Mask(t *table.Table) ([]bool, error) {
	tv, err := p.tri(t)
	return tv.T, err
}

// String implements Predicate.
func (p And) String() string {
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = groupString(sub)
	}
	return strings.Join(parts, " AND ")
}

// Or keeps rows matching any sub-predicate (Kleene disjunction: TRUE if
// any disjunct is TRUE, FALSE if all are FALSE, otherwise UNKNOWN).
type Or []Predicate

func (p Or) tri(t *table.Table) (tri, error) {
	if len(p) == 0 {
		return tri{}, errors.New("query: empty disjunction")
	}
	acc, err := evalTri(p[0], t)
	if err != nil {
		return tri{}, err
	}
	for _, sub := range p[1:] {
		m, err := evalTri(sub, t)
		if err != nil {
			return tri{}, err
		}
		for i := range acc.T {
			acc.T[i] = acc.T[i] || m.T[i]
			acc.F[i] = acc.F[i] && m.F[i]
		}
	}
	return acc, nil
}

// Mask implements Predicate.
func (p Or) Mask(t *table.Table) ([]bool, error) {
	tv, err := p.tri(t)
	return tv.T, err
}

// String implements Predicate.
func (p Or) String() string {
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = groupString(sub)
	}
	return strings.Join(parts, " OR ")
}

// groupString renders a sub-predicate of a composite, parenthesizing
// nested composites so the rendering re-parses with the same structure.
func groupString(p Predicate) string {
	switch p.(type) {
	case And, Or:
		return "(" + p.String() + ")"
	}
	return p.String()
}

// Not inverts a predicate. UNKNOWN stays UNKNOWN: rows with invalid
// cells match neither a comparison nor its negation.
type Not struct{ P Predicate }

func (p Not) tri(t *table.Table) (tri, error) {
	m, err := evalTri(p.P, t)
	if err != nil {
		return tri{}, err
	}
	m.T, m.F = m.F, m.T
	return m, nil
}

// Mask implements Predicate.
func (p Not) Mask(t *table.Table) ([]bool, error) {
	tv, err := p.tri(t)
	return tv.T, err
}

// String implements Predicate.
func (p Not) String() string { return "NOT (" + p.P.String() + ")" }

// Select runs a predicate and materializes the matching subset.
func Select(t *table.Table, p Predicate) (*table.Table, error) {
	mask, err := p.Mask(t)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return t.FilterMask(mask)
}

// Residential is the paper's case-study selection: intended use E.1.1.
func Residential() Predicate {
	return In{Attr: epc.AttrIntendedUse, Values: []string{epc.UseResidential}}
}

// InCity selects certificates of one municipality.
func InCity(city string) Predicate {
	return In{Attr: epc.AttrCity, Values: []string{city}}
}

// InDistrict selects certificates of one district.
func InDistrict(id string) Predicate {
	return In{Attr: epc.AttrDistrict, Values: []string{id}}
}
