package query

import (
	"errors"
	"fmt"

	"indice/internal/table"
)

// MaskEncodedBits evaluates the compiled predicate directly over an
// encoded segment, never materializing the raw columns, and returns the
// keep-mask as a packed bitset: bit i is set exactly for rows whose
// three-valued evaluation is definitively TRUE, bits at and beyond the
// row count are zero.
//
// The evaluation is word-at-a-time end to end: an In/= over a dictionary
// column compares bit-packed dictionary codes against a per-segment code
// set, a numeric range over a frame-of-reference column compares codes
// against translated code bounds, and the Kleene AND/OR/NOT algebra
// combines 64 rows per machine op on the nodes' truth bitsets. Semantics
// are bit-for-bit those of Mask over the decoded table — the randomized
// equivalence suite pins the two paths against each other.
//
// The returned slice aliases the evaluator's root buffer and is only
// valid until the next evaluation. Not safe for concurrent use.
func (e *Evaluator) MaskEncodedBits(enc *table.Encoded) ([]uint64, error) {
	if err := e.root.evalEncoded(enc); err != nil {
		return nil, err
	}
	return e.root.tw, nil
}

// MaskEncoded is MaskEncodedBits expanded to the []bool shape of Mask,
// for callers (and equivalence tests) that compare the two paths
// row-wise. The returned slice aliases an evaluator buffer.
func (e *Evaluator) MaskEncoded(enc *table.Encoded) ([]bool, error) {
	words, err := e.MaskEncodedBits(enc)
	if err != nil {
		return nil, err
	}
	rows := enc.NumRows()
	n := e.root
	// t and f resize as a pair — grow assumes equal capacity.
	if cap(n.t) < rows {
		n.t = make([]bool, rows)
		n.f = make([]bool, rows)
	}
	n.t = n.t[:rows]
	for i := range n.t {
		n.t[i] = words[i>>6]&(1<<(uint(i)&63)) != 0
	}
	return n.t, nil
}

// MaskEncodedRows evaluates the compiled predicate at just the given
// ordinals of an encoded segment — the planner's candidate re-check,
// where the index has already narrowed a segment to a few rows and
// materializing the rest only to discard them would dominate the query.
// The returned mask is parallel to rows: mask[j] reports whether row
// rows[j] evaluates definitively TRUE, exactly as bit rows[j] of
// MaskEncodedBits. The slice aliases an evaluator buffer.
func (e *Evaluator) MaskEncodedRows(enc *table.Encoded, rows []int) ([]bool, error) {
	if err := e.root.evalEncodedRows(enc, rows); err != nil {
		return nil, err
	}
	return e.root.t, nil
}

func (n *evalNode) evalEncodedRows(enc *table.Encoded, rows []int) error {
	switch n.op {
	case opNumRange:
		c, err := encodedColumn(enc, n.attr, table.Float64)
		if err != nil {
			return err
		}
		// All-valid columns write every slot, so the buffers need no
		// clearing and the loop carries no validity branch.
		if c.Kind() == table.KindPacked {
			cLo, cHi, ok := c.CodeBounds(n.min, n.max)
			if c.AllValid() {
				n.growDirty(len(rows))
				for j, r := range rows {
					code := c.CodeAt(r)
					in := ok && code >= cLo && code <= cHi
					n.t[j] = in
					n.f[j] = !in
				}
			} else {
				n.grow(len(rows))
				for j, r := range rows {
					if !c.ValidAt(r) {
						continue
					}
					code := c.CodeAt(r)
					in := ok && code >= cLo && code <= cHi
					n.t[j] = in
					n.f[j] = !in
				}
			}
		} else if c.AllValid() {
			n.growDirty(len(rows))
			for j, r := range rows {
				v := c.FloatAt(r)
				in := v >= n.min && v <= n.max
				n.t[j] = in
				n.f[j] = !in
			}
		} else {
			n.grow(len(rows))
			for j, r := range rows {
				if !c.ValidAt(r) {
					continue
				}
				v := c.FloatAt(r)
				in := v >= n.min && v <= n.max
				n.t[j] = in
				n.f[j] = !in
			}
		}
	case opIn:
		c, err := encodedColumn(enc, n.attr, table.String)
		if err != nil {
			return err
		}
		if c.Kind() == table.KindDict {
			n.growCodeSet(c)
			if c.AllValid() {
				n.growDirty(len(rows))
				for j, r := range rows {
					code := c.CodeAt(r)
					in := n.codeSet[code>>6]&(1<<(code&63)) != 0
					n.t[j] = in
					n.f[j] = !in
				}
			} else {
				n.grow(len(rows))
				for j, r := range rows {
					if !c.ValidAt(r) {
						continue
					}
					code := c.CodeAt(r)
					in := n.codeSet[code>>6]&(1<<(code&63)) != 0
					n.t[j] = in
					n.f[j] = !in
				}
			}
		} else if c.AllValid() {
			n.growDirty(len(rows))
			for j, r := range rows {
				in := n.set[c.StringAt(r)]
				n.t[j] = in
				n.f[j] = !in
			}
		} else {
			n.grow(len(rows))
			for j, r := range rows {
				if !c.ValidAt(r) {
					continue
				}
				in := n.set[c.StringAt(r)]
				n.t[j] = in
				n.f[j] = !in
			}
		}
	case opAnd, opOr:
		if len(n.kids) == 0 {
			if n.op == opAnd {
				return errors.New("query: empty conjunction")
			}
			return errors.New("query: empty disjunction")
		}
		for _, kid := range n.kids {
			if err := kid.evalEncodedRows(enc, rows); err != nil {
				return err
			}
		}
		n.growDirty(len(rows))
		copy(n.t, n.kids[0].t)
		copy(n.f, n.kids[0].f)
		if n.op == opAnd {
			for _, kid := range n.kids[1:] {
				for j := range n.t {
					n.t[j] = n.t[j] && kid.t[j]
					n.f[j] = n.f[j] || kid.f[j]
				}
			}
		} else {
			for _, kid := range n.kids[1:] {
				for j := range n.t {
					n.t[j] = n.t[j] || kid.t[j]
					n.f[j] = n.f[j] && kid.f[j]
				}
			}
		}
	case opNot:
		kid := n.kids[0]
		if err := kid.evalEncodedRows(enc, rows); err != nil {
			return err
		}
		n.growDirty(len(rows))
		copy(n.t, kid.f)
		copy(n.f, kid.t)
	case opOpaque:
		// Foreign predicates see the decoded segment and are sampled at
		// the requested ordinals (they are row-local by the Mask
		// contract).
		m, err := n.opaque.Mask(enc.Decode())
		if err != nil {
			return err
		}
		if len(m) != enc.NumRows() {
			return fmt.Errorf("query: predicate mask has %d entries, table has %d rows", len(m), enc.NumRows())
		}
		n.growDirty(len(rows))
		for j, r := range rows {
			if r < 0 || r >= len(m) {
				return fmt.Errorf("table: row %d out of range [0,%d)", r, len(m))
			}
			n.t[j] = m[r]
			n.f[j] = !m[r]
		}
	}
	return nil
}

// growCodeSet rebuilds the node's In value set as a bitset over the
// dictionary codes of c.
func (n *evalNode) growCodeSet(c *table.EncodedColumn) {
	nw := (c.DictLen() + 63) / 64
	if cap(n.codeSet) < nw {
		n.codeSet = make([]uint64, nw)
	}
	n.codeSet = n.codeSet[:nw]
	for i := range n.codeSet {
		n.codeSet[i] = 0
	}
	for v := range n.set {
		if code, ok := c.DictCode(v); ok {
			n.codeSet[code>>6] |= 1 << (code & 63)
		}
	}
}

// encodedColumn resolves the node's attribute against the segment with
// the same error contract as Table.Floats/Strings.
func encodedColumn(enc *table.Encoded, attr string, want table.Type) (*table.EncodedColumn, error) {
	c := enc.Column(attr)
	if c == nil {
		return nil, fmt.Errorf("%w: %q", table.ErrNoColumn, attr)
	}
	if c.Type() != want {
		return nil, fmt.Errorf("%w: %q is %v, want %v", table.ErrTypeMismatch, attr, c.Type(), want)
	}
	return c, nil
}

// growBits resizes the node's packed truth buffers to cover rows bits.
// The buffers are NOT cleared: every op below overwrites them in full.
func (n *evalNode) growBits(rows int) {
	nw := (rows + 63) / 64
	if cap(n.tw) < nw {
		n.tw = make([]uint64, nw)
		n.fw = make([]uint64, nw)
	}
	n.tw, n.fw = n.tw[:nw], n.fw[:nw]
}

func (n *evalNode) evalEncoded(enc *table.Encoded) error {
	rows := enc.NumRows()
	switch n.op {
	case opNumRange:
		c, err := encodedColumn(enc, n.attr, table.Float64)
		if err != nil {
			return err
		}
		n.growBits(rows)
		c.FloatRangeBits(n.min, n.max, n.tw, n.fw)
	case opIn:
		c, err := encodedColumn(enc, n.attr, table.String)
		if err != nil {
			return err
		}
		n.growBits(rows)
		if c.Kind() == table.KindDict {
			// Translate the value set into this segment's dictionary
			// codes once, then the row loop is packed-code membership.
			n.growCodeSet(c)
			c.DictSetBits(n.codeSet, n.tw, n.fw)
		} else {
			c.StringSetBits(n.set, n.tw, n.fw)
		}
	case opAnd, opOr:
		if len(n.kids) == 0 {
			if n.op == opAnd {
				return errors.New("query: empty conjunction")
			}
			return errors.New("query: empty disjunction")
		}
		for _, kid := range n.kids {
			if err := kid.evalEncoded(enc); err != nil {
				return err
			}
		}
		n.growBits(rows)
		copy(n.tw, n.kids[0].tw)
		copy(n.fw, n.kids[0].fw)
		if n.op == opAnd {
			for _, kid := range n.kids[1:] {
				kt, kf := kid.tw, kid.fw
				for w := range n.tw {
					n.tw[w] &= kt[w]
					n.fw[w] |= kf[w]
				}
			}
		} else {
			for _, kid := range n.kids[1:] {
				kt, kf := kid.tw, kid.fw
				for w := range n.tw {
					n.tw[w] |= kt[w]
					n.fw[w] &= kf[w]
				}
			}
		}
	case opNot:
		kid := n.kids[0]
		if err := kid.evalEncoded(enc); err != nil {
			return err
		}
		n.growBits(rows)
		copy(n.tw, kid.fw)
		copy(n.fw, kid.tw)
	case opOpaque:
		// Foreign Predicate implementations only understand raw tables:
		// decode and fall back to their two-valued Mask, exactly as eval
		// does.
		m, err := n.opaque.Mask(enc.Decode())
		if err != nil {
			return err
		}
		if len(m) != rows {
			return fmt.Errorf("query: predicate mask has %d entries, table has %d rows", len(m), rows)
		}
		n.growBits(rows)
		var acc uint64
		for i, v := range m {
			if v {
				acc |= 1 << (uint(i) & 63)
			}
			if i&63 == 63 {
				n.tw[i>>6] = acc
				acc = 0
			}
		}
		if rows&63 != 0 {
			n.tw[rows>>6] = acc
		}
		for w := range n.fw {
			n.fw[w] = ^n.tw[w]
		}
		if tail := uint(rows & 63); tail != 0 {
			n.fw[len(n.fw)-1] &= uint64(1)<<tail - 1
		}
	}
	return nil
}
