package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indice/internal/table"
)

// encEquivTable builds tables that hit every encoded layout and every
// Kleene edge: dict and raw strings, packed and raw floats, NULLs, NaN,
// empty strings (valid and invalid), duplicate-heavy columns.
func encEquivTable(t testing.TB, rng *rand.Rand, rows int) *table.Table {
	t.Helper()
	tab := table.New()
	classes := []string{"A", "B", "C", "", "D", "E", "F"}
	cls := make([]string, rows)
	clsValid := make([]bool, rows)
	ids := make([]string, rows)
	year := make([]float64, rows)
	yearValid := make([]bool, rows)
	eph := make([]float64, rows)
	for i := 0; i < rows; i++ {
		cls[i] = classes[rng.Intn(len(classes))]
		clsValid[i] = rng.Intn(8) != 0
		if !clsValid[i] {
			cls[i] = ""
		}
		ids[i] = fmt.Sprintf("id-%05d", rng.Intn(rows*2))
		year[i] = float64(1950 + rng.Intn(80))
		yearValid[i] = rng.Intn(6) != 0
		eph[i] = rng.Float64()*500 - 50
		if rng.Intn(9) == 0 {
			eph[i] = math.NaN()
		}
	}
	if err := tab.AddStringsValid("class", cls, clsValid); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddStrings("cert_id", ids); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddFloatsValid("year", year, yearValid); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddFloats("eph", eph); err != nil {
		t.Fatal(err)
	}
	return tab
}

func randEncPredicate(rng *rand.Rand, depth int) Predicate {
	if depth > 0 && rng.Intn(2) == 0 {
		n := 2 + rng.Intn(2)
		kids := make([]Predicate, n)
		for i := range kids {
			kids[i] = randEncPredicate(rng, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(kids)
		case 1:
			return Or(kids)
		default:
			return Not{P: randEncPredicate(rng, depth - 1)}
		}
	}
	switch rng.Intn(4) {
	case 0:
		vals := []string{"A", "B", "C", "D", "E", "F", ""}
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		return In{Attr: "class", Values: vals[:1+rng.Intn(4)]}
	case 1:
		return In{Attr: "cert_id", Values: []string{fmt.Sprintf("id-%05d", rng.Intn(600)), "absent"}}
	case 2:
		lo := float64(1950 + rng.Intn(80))
		return NumRange{Attr: "year", Min: lo - 0.5, Max: lo + float64(rng.Intn(30))}
	default:
		lo := rng.Float64()*400 - 50
		return NumRange{Attr: "eph", Min: lo, Max: lo + rng.Float64()*200}
	}
}

// TestMaskEncodedMatchesMaskBitwise pins the encoded evaluation path
// bitwise against both the compiled raw-table path and the naive
// Predicate.Mask reference.
func TestMaskEncodedMatchesMaskBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		rows := 1 + rng.Intn(300)
		tab := encEquivTable(t, rng, rows)
		enc := table.Encode(tab)
		p := randEncPredicate(rng, 2)
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		wantRef, err := p.Mask(tab)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.MaskEncoded(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantRef) {
			t.Fatalf("trial %d (%s): mask length %d vs %d", trial, p, len(got), len(wantRef))
		}
		for i := range got {
			if got[i] != wantRef[i] {
				t.Fatalf("trial %d (%s): row %d: encoded=%v reference=%v", trial, p, i, got[i], wantRef[i])
			}
		}
		// Same evaluator, raw path, to confirm the shared buffers don't
		// leak state between the two entry points.
		gotRaw, err := ev.Mask(tab)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gotRaw {
			if gotRaw[i] != wantRef[i] {
				t.Fatalf("trial %d (%s): row %d: raw-after-encoded=%v reference=%v", trial, p, i, gotRaw[i], wantRef[i])
			}
		}
	}
}

// TestMaskEncodedRowsMatchesFullMask pins the sparse candidate re-check
// against the full encoded evaluation: mask[j] for ordinal rows[j] must
// equal bit rows[j] of the full mask, for random predicates, random
// ordinal subsets (duplicates and re-visits included), and both entry
// orders (sparse-then-full and full-then-sparse share node buffers).
func TestMaskEncodedRowsMatchesFullMask(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		rows := 1 + rng.Intn(300)
		tab := encEquivTable(t, rng, rows)
		enc := table.Encode(tab)
		p := randEncPredicate(rng, 2)
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		ords := make([]int, rng.Intn(rows+1))
		for i := range ords {
			ords[i] = rng.Intn(rows)
		}
		sparse, err := ev.MaskEncodedRows(enc, ords)
		if err != nil {
			t.Fatal(err)
		}
		if len(sparse) != len(ords) {
			t.Fatalf("trial %d (%s): sparse mask has %d entries, want %d", trial, p, len(sparse), len(ords))
		}
		// Copy before the second evaluation: sparse aliases a buffer the
		// full path will overwrite.
		got := make([]bool, len(sparse))
		copy(got, sparse)
		full, err := ev.MaskEncoded(enc)
		if err != nil {
			t.Fatal(err)
		}
		for j, r := range ords {
			if got[j] != full[r] {
				t.Fatalf("trial %d (%s): ordinal %d (row %d): sparse=%v full=%v", trial, p, j, r, got[j], full[r])
			}
		}
	}
}

func TestMaskEncodedRowsOpaqueAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := encEquivTable(t, rng, 120)
	enc := table.Encode(tab)
	p := Not{P: Or{opaquePred{attr: "class"}, NumRange{Attr: "year", Min: 1990, Max: 2000}}}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Mask(tab)
	if err != nil {
		t.Fatal(err)
	}
	ords := []int{119, 0, 60, 60, 3}
	got, err := ev.MaskEncodedRows(enc, ords)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range ords {
		if got[j] != want[r] {
			t.Fatalf("ordinal %d (row %d): %v vs %v", j, r, got[j], want[r])
		}
	}
	for _, bad := range []Predicate{
		In{Attr: "missing", Values: []string{"x"}},
		NumRange{Attr: "class", Min: 0, Max: 1}, // type mismatch
		opaquePred{attr: "missing"},
	} {
		ev, err := NewEvaluator(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.MaskEncodedRows(enc, ords); err == nil {
			t.Errorf("%v: want error", bad)
		}
	}
	if ev, err = NewEvaluator(opaquePred{attr: "class"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.MaskEncodedRows(enc, []int{120}); err == nil {
		t.Error("out-of-range ordinal against an opaque predicate: want error")
	}
}

// opaquePred is a Predicate implementation outside this package's known
// types: MaskEncoded must decode and fall back.
type opaquePred struct{ attr string }

func (o opaquePred) Mask(t *table.Table) ([]bool, error) {
	vals, err := t.Strings(o.attr)
	if err != nil {
		return nil, err
	}
	m := make([]bool, len(vals))
	for i, v := range vals {
		m[i] = v == "A"
	}
	return m, nil
}

func (o opaquePred) String() string { return "opaque" }

func TestMaskEncodedOpaqueFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := encEquivTable(t, rng, 200)
	enc := table.Encode(tab)
	p := And{opaquePred{attr: "class"}, NumRange{Attr: "year", Min: 1960, Max: 2010}}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Mask(tab)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.MaskEncoded(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMaskEncodedErrors(t *testing.T) {
	tab := table.New()
	if err := tab.AddStrings("c", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	enc := table.Encode(tab)
	for _, p := range []Predicate{
		In{Attr: "missing", Values: []string{"x"}},
		NumRange{Attr: "c", Min: 0, Max: 1}, // type mismatch
		NumRange{Attr: "missing", Min: 0, Max: 1},
	} {
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.MaskEncoded(enc); err == nil {
			t.Errorf("%s: want error", p)
		}
	}
}
