package query

import (
	"math"
	"reflect"
	"testing"
)

func TestParseExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Predicate
	}{
		{"eph in [50, 150]", NumRange{Attr: "eph", Min: 50, Max: 150}},
		{"eph in [50,150] and district = D1 and energy_class in {A1, B}",
			And{
				NumRange{Attr: "eph", Min: 50, Max: 150},
				In{Attr: "district", Values: []string{"D1"}},
				In{Attr: "energy_class", Values: []string{"A1", "B"}},
			}},
		{"intended_use = E.1.1", In{Attr: "intended_use", Values: []string{"E.1.1"}}},
		{"city != Milano", Not{P: In{Attr: "city", Values: []string{"Milano"}}}},
		{"eph >= 300", NumRange{Attr: "eph", Min: 300, Max: math.Inf(1)}},
		{"eph <= 80.5", NumRange{Attr: "eph", Min: math.Inf(-1), Max: 80.5}},
		{"not (city = Torino)", Not{P: In{Attr: "city", Values: []string{"Torino"}}}},
		{"NOT city = Torino", Not{P: In{Attr: "city", Values: []string{"Torino"}}}},
		{"a = x or b = y and c = z", // AND binds tighter than OR
			Or{
				In{Attr: "a", Values: []string{"x"}},
				And{In{Attr: "b", Values: []string{"y"}}, In{Attr: "c", Values: []string{"z"}}},
			}},
		{"(a = x or b = y) and c = z",
			And{
				Or{In{Attr: "a", Values: []string{"x"}}, In{Attr: "b", Values: []string{"y"}}},
				In{Attr: "c", Values: []string{"z"}},
			}},
		{`"heat surface" in [10, 20]`, NumRange{Attr: "heat surface", Min: 10, Max: 20}},
		{`city in {"San Mauro", Torino}`, In{Attr: "city", Values: []string{"San Mauro", "Torino"}}},
		{"eph in [-Inf, 100]", NumRange{Attr: "eph", Min: math.Inf(-1), Max: 100}},
		{"eph in [1e2, 1.5e2]", NumRange{Attr: "eph", Min: 100, Max: 150}},
		{"zone in {3, 4}", In{Attr: "zone", Values: []string{"3", "4"}}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"eph in",
		"eph in [50",
		"eph in [50, ]",
		"eph in [a, b]",
		"eph in [NaN, 5]",
		"eph in {}",
		"and eph in [1, 2]",
		"eph in [1, 2] and",
		"eph in [1, 2] garbage",
		"(eph in [1, 2]",
		"eph > 5",
		"eph < 5",
		"eph ! 5",
		`"unterminated in [1, 2]`,
		"eph in [1, 2] && city = a",
	}
	for _, in := range bad {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, p)
		}
	}
}

// TestParseStringRoundTrip pins that String output re-parses to the same
// tree, and that rendering is a fixed point of parse∘String.
func TestParseStringRoundTrip(t *testing.T) {
	preds := []Predicate{
		NumRange{Attr: "eph", Min: 50, Max: 150},
		NumRange{Attr: "eph", Min: math.Inf(-1), Max: 80},
		In{Attr: "district", Values: []string{"D1", "D2"}},
		In{Attr: "city", Values: []string{"San Mauro Torinese", "Torino"}},
		In{Attr: "weird attr", Values: []string{"a,b", `with "quotes"`, ""}},
		And{Residential(), InCity("Torino"), NumRange{Attr: "eph", Min: 0, Max: 100}},
		Or{InDistrict("D1"), And{Residential(), Not{P: InCity("Milano")}}},
		Not{P: Or{InCity("a"), InCity("b")}},
		And{Or{InCity("a"), InCity("b")}, Or{InCity("c"), InCity("d")}},
	}
	for _, p := range preds {
		s := p.String()
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(String %q): %v", s, err)
			continue
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip of %q = %#v, want %#v", s, got, p)
		}
		if got.String() != s {
			t.Errorf("String not a fixed point: %q -> %q", s, got.String())
		}
	}
}

func TestPredicateJSONRoundTrip(t *testing.T) {
	preds := []Predicate{
		NumRange{Attr: "eph", Min: 50, Max: 150},
		NumRange{Attr: "eph", Min: math.Inf(-1), Max: math.Inf(1)},
		In{Attr: "district", Values: []string{"D1"}},
		And{Residential(), Not{P: NumRange{Attr: "eph", Min: 100, Max: math.Inf(1)}}},
		Or{InCity("Torino"), InCity("Milano")},
	}
	for _, p := range preds {
		data, err := MarshalPredicate(p)
		if err != nil {
			t.Fatalf("marshal %s: %v", p, err)
		}
		got, err := UnmarshalPredicate(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("JSON round trip of %s = %#v, want %#v", data, got, p)
		}
	}
}

func TestPredicateJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"op":"range"}`,
		`{"op":"in","attr":"a"}`,
		`{"op":"and"}`,
		`{"op":"and","args":[]}`,
		`{"op":"not"}`,
		`{"op":"frobnicate","attr":"a"}`,
		`{"op":"and","args":[{"op":"bad"}]}`,
	}
	for _, in := range bad {
		if p, err := UnmarshalPredicate([]byte(in)); err == nil {
			t.Errorf("UnmarshalPredicate(%q) = %v, want error", in, p)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on a bad query")
		}
	}()
	MustParse("not a ( query")
}

// FuzzParseQuery asserts the parser never panics, and that for every
// accepted input parse→String→parse is a fixed point: the canonical
// rendering re-parses, renders identically, and selects the same rows.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"eph in [50, 150] and district = D1",
		"class in {A1, B} or not (eph >= 300)",
		`"weird attr" != "va l,ue"`,
		"a in [-Inf, +Inf]",
		"not not not x = y",
		"((a = b))",
		"zone in {1, 2, 3} and zone != 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Parse(in)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, in, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String not a fixed point: %q -> %q (input %q)", s, s2, in)
		}
	})
}
