package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse converts the textual predicate DSL into a Predicate tree.
//
// Grammar (keywords case-insensitive, whitespace free-form):
//
//	expr       := and-expr ( OR and-expr )*
//	and-expr   := unary ( AND unary )*
//	unary      := NOT unary | '(' expr ')' | comparison
//	comparison := attr 'in' '[' number ',' number ']'   numeric range, inclusive
//	            | attr 'in' '{' value (',' value)* '}'  categorical membership
//	            | attr '='  value                       sugar for attr in {value}
//	            | attr '!=' value                       sugar for NOT (attr in {value})
//	            | attr '>=' number                      sugar for attr in [number, +Inf]
//	            | attr '<=' number                      sugar for attr in [-Inf, number]
//	attr, value := bare word or double-quoted string
//
// Examples:
//
//	eph in [50, 150] and district = D1 and energy_class in {A1, B}
//	not (intended_use = E.1.1) or eph >= 300
//
// Bare words may contain letters, digits, '_', '.' and '-'; anything
// else (spaces, commas, braces) must be double-quoted with Go escaping.
// Range bounds accept +Inf/-Inf. The String method of the returned
// predicate renders canonical text that re-parses to an equivalent tree.
func Parse(s string) (Predicate, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, fmt.Errorf("query: parse %q: %w", s, err)
	}
	p := &parser{toks: toks}
	pred, err := p.parseExpr(0)
	if err != nil {
		return nil, fmt.Errorf("query: parse %q: %w", s, err)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("query: parse %q: unexpected %q after predicate", s, p.peek().text)
	}
	return pred, nil
}

// MustParse is Parse for static query literals; it panics on error.
func MustParse(s string) Predicate {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maxParseDepth bounds expression nesting so adversarial inputs
// ("((((…") fail fast instead of exhausting the stack.
const maxParseDepth = 500

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // quoted; text holds the unquoted content
	tokAnd
	tokOr
	tokNot
	tokIn
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokLBrace
	tokRBrace
	tokComma
	tokEq
	tokNe
	tokGe
	tokLe
)

type token struct {
	kind tokKind
	text string
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || r == '.' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func lex(s string) ([]token, error) {
	var toks []token
	rs := []rune(s)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case r == '[':
			toks = append(toks, token{tokLBrack, "["})
			i++
		case r == ']':
			toks = append(toks, token{tokRBrack, "]"})
			i++
		case r == '{':
			toks = append(toks, token{tokLBrace, "{"})
			i++
		case r == '}':
			toks = append(toks, token{tokRBrace, "}"})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case r == '=':
			toks = append(toks, token{tokEq, "="})
			i++
		case r == '!':
			if i+1 >= len(rs) || rs[i+1] != '=' {
				return nil, fmt.Errorf("stray '!' (did you mean '!=')")
			}
			toks = append(toks, token{tokNe, "!="})
			i += 2
		case r == '>':
			if i+1 >= len(rs) || rs[i+1] != '=' {
				return nil, fmt.Errorf("stray '>' (only '>=' is supported; use ranges for strict bounds)")
			}
			toks = append(toks, token{tokGe, ">="})
			i += 2
		case r == '<':
			if i+1 >= len(rs) || rs[i+1] != '=' {
				return nil, fmt.Errorf("stray '<' (only '<=' is supported; use ranges for strict bounds)")
			}
			toks = append(toks, token{tokLe, "<="})
			i += 2
		case r == '"':
			j := i + 1
			for j < len(rs) {
				if rs[j] == '\\' {
					j += 2
					continue
				}
				if rs[j] == '"' {
					break
				}
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("unterminated string")
			}
			unq, err := strconv.Unquote(string(rs[i : j+1]))
			if err != nil {
				return nil, fmt.Errorf("bad string %s: %v", string(rs[i:j+1]), err)
			}
			toks = append(toks, token{tokString, unq})
			i = j + 1
		case r == '+' || r == '-' || r == '.' || unicode.IsDigit(r):
			// Number: sign, digits/dots/exponents, or a signed inf/nan
			// word ("+Inf" as %g prints it).
			j := i
			if rs[j] == '+' || rs[j] == '-' {
				j++
			}
			if j < len(rs) && unicode.IsLetter(rs[j]) {
				for j < len(rs) && unicode.IsLetter(rs[j]) {
					j++
				}
			} else {
				for j < len(rs) {
					c := rs[j]
					if unicode.IsDigit(c) || c == '.' || c == 'e' || c == 'E' {
						j++
						continue
					}
					if (c == '+' || c == '-') && (rs[j-1] == 'e' || rs[j-1] == 'E') {
						j++
						continue
					}
					break
				}
			}
			text := string(rs[i:j])
			if _, err := strconv.ParseFloat(text, 64); err != nil {
				return nil, fmt.Errorf("bad number %q", text)
			}
			toks = append(toks, token{tokNumber, text})
			i = j
		case isIdentStart(r):
			j := i
			for j < len(rs) && isIdentCont(rs[j]) {
				j++
			}
			text := string(rs[i:j])
			switch strings.ToLower(text) {
			case "and":
				toks = append(toks, token{tokAnd, text})
			case "or":
				toks = append(toks, token{tokOr, text})
			case "not":
				toks = append(toks, token{tokNot, text})
			case "in":
				toks = append(toks, token{tokIn, text})
			default:
				toks = append(toks, token{tokIdent, text})
			}
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", string(r))
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("expected %s, got %q", what, tokenText(t))
	}
	return t, nil
}

func tokenText(t token) string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return t.text
}

// parseExpr parses an OR-chain of AND-chains.
func (p *parser) parseExpr(depth int) (Predicate, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("expression nested deeper than %d", maxParseDepth)
	}
	first, err := p.parseAnd(depth)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokOr {
		return first, nil
	}
	or := Or{first}
	for p.peek().kind == tokOr {
		p.next()
		sub, err := p.parseAnd(depth)
		if err != nil {
			return nil, err
		}
		or = append(or, sub)
	}
	return or, nil
}

func (p *parser) parseAnd(depth int) (Predicate, error) {
	first, err := p.parseUnary(depth)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokAnd {
		return first, nil
	}
	and := And{first}
	for p.peek().kind == tokAnd {
		p.next()
		sub, err := p.parseUnary(depth)
		if err != nil {
			return nil, err
		}
		and = append(and, sub)
	}
	return and, nil
}

func (p *parser) parseUnary(depth int) (Predicate, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("expression nested deeper than %d", maxParseDepth)
	}
	switch p.peek().kind {
	case tokNot:
		p.next()
		sub, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return Not{P: sub}, nil
	case tokLParen:
		p.next()
		sub, err := p.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return sub, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Predicate, error) {
	attrTok := p.next()
	if attrTok.kind != tokIdent && attrTok.kind != tokString {
		return nil, fmt.Errorf("expected attribute name, got %q", tokenText(attrTok))
	}
	attr := attrTok.text
	op := p.next()
	switch op.kind {
	case tokIn:
		open := p.next()
		switch open.kind {
		case tokLBrack:
			lo, err := p.parseBound()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
			hi, err := p.parseBound()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
			return NumRange{Attr: attr, Min: lo, Max: hi}, nil
		case tokLBrace:
			var vals []string
			for {
				v, err := p.parseValue()
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
				sep := p.next()
				if sep.kind == tokRBrace {
					break
				}
				if sep.kind != tokComma {
					return nil, fmt.Errorf("expected ',' or '}', got %q", tokenText(sep))
				}
			}
			return In{Attr: attr, Values: vals}, nil
		default:
			return nil, fmt.Errorf("expected '[' or '{' after %q in, got %q", attr, tokenText(open))
		}
	case tokEq:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return In{Attr: attr, Values: []string{v}}, nil
	case tokNe:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return Not{P: In{Attr: attr, Values: []string{v}}}, nil
	case tokGe:
		v, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		return NumRange{Attr: attr, Min: v, Max: math.Inf(1)}, nil
	case tokLe:
		v, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		return NumRange{Attr: attr, Min: math.Inf(-1), Max: v}, nil
	default:
		return nil, fmt.Errorf("expected comparison operator after %q, got %q", attr, tokenText(op))
	}
}

// parseBound parses a numeric range bound: a number token, or an
// inf-like bare word ("Inf", "-Inf"). NaN bounds are rejected.
func (p *parser) parseBound() (float64, error) {
	t := p.next()
	switch t.kind {
	case tokNumber, tokIdent:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, fmt.Errorf("expected number, got %q", tokenText(t))
		}
		if math.IsNaN(v) {
			return 0, fmt.Errorf("NaN is not a valid range bound")
		}
		return v, nil
	}
	return 0, fmt.Errorf("expected number, got %q", tokenText(t))
}

// parseValue parses one categorical value: a bare word, a number (kept
// as its literal text) or a quoted string.
func (p *parser) parseValue() (string, error) {
	t := p.next()
	switch t.kind {
	case tokIdent, tokNumber, tokString:
		return t.text, nil
	}
	return "", fmt.Errorf("expected value, got %q", tokenText(t))
}

// quoteIdent renders an attribute name, quoting it when it would not lex
// back as a single bare word.
func quoteIdent(s string) string {
	if bareWord(s) {
		return s
	}
	return strconv.Quote(s)
}

// quoteValue renders a categorical value, keeping bare words and number
// literals as-is and quoting everything else.
func quoteValue(s string) string {
	if bareWord(s) || bareNumber(s) {
		return s
	}
	return strconv.Quote(s)
}

// bareWord reports whether s lexes back as one identifier token (and is
// not a keyword).
func bareWord(s string) bool {
	rs := []rune(s)
	if len(rs) == 0 || !isIdentStart(rs[0]) {
		return false
	}
	for _, r := range rs[1:] {
		if !isIdentCont(r) {
			return false
		}
	}
	switch strings.ToLower(s) {
	case "and", "or", "not", "in":
		return false
	}
	return true
}

// bareNumber reports whether s lexes back as one number token with the
// same text.
func bareNumber(s string) bool {
	toks, err := lex(s)
	if err != nil || len(toks) != 2 {
		return false
	}
	return toks[0].kind == tokNumber && toks[0].text == s
}
