package query

import (
	"math"
	"strings"
	"testing"

	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/table"
)

func sample(t *testing.T) *table.Table {
	t.Helper()
	tab := table.New()
	steps := []error{
		tab.AddFloats("eph", []float64{50, 150, 90, math.NaN(), 300}),
		tab.AddStrings(epc.AttrIntendedUse, []string{"E.1.1", "E.1.1", "E.2", "E.1.1", "E.8"}),
		tab.AddStrings(epc.AttrCity, []string{"Torino", "Torino", "Milano", "Torino", "Torino"}),
		tab.AddStrings(epc.AttrDistrict, []string{"D1", "D2", "D1", "D1", "D2"}),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestNumRange(t *testing.T) {
	tab := sample(t)
	got, err := Select(tab, NumRange{Attr: "eph", Min: 60, Max: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	vals, _ := got.Floats("eph")
	if vals[0] != 150 || vals[1] != 90 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestNumRangeExcludesInvalid(t *testing.T) {
	tab := sample(t)
	got, err := Select(tab, NumRange{Attr: "eph", Min: -1e9, Max: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 4 { // NaN row excluded
		t.Fatalf("rows = %d", got.NumRows())
	}
}

func TestIn(t *testing.T) {
	tab := sample(t)
	got, err := Select(tab, In{Attr: epc.AttrIntendedUse, Values: []string{"E.1.1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

func TestAndNot(t *testing.T) {
	tab := sample(t)
	p := And{
		Residential(),
		InCity("Torino"),
		Not{NumRange{Attr: "eph", Min: 100, Max: 1e9}},
	}
	got, err := Select(tab, p)
	if err != nil {
		t.Fatal(err)
	}
	// Residential Torino rows: 0, 1, 3; NOT eph in [100,1e9] removes
	// row 1, and row 3 (NaN eph) is UNKNOWN — invalid cells never match,
	// under negation either. Only row 0 survives.
	if got.NumRows() != 1 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if s := p.String(); !strings.Contains(s, "AND") || !strings.Contains(s, "NOT") {
		t.Fatalf("String = %q", s)
	}
}

// TestInvalidCellsNeverMatch pins the three-valued NaN/invalid
// semantics: a comparison against an invalid cell is UNKNOWN, so the row
// is excluded from the predicate, from its negation, and from any
// double negation — not() must not resurrect NaN rows.
func TestInvalidCellsNeverMatch(t *testing.T) {
	tab := table.New()
	if err := tab.AddFloats("eph", []float64{50, math.NaN(), 300}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddStringsValid("district", []string{"D1", "D2", ""}, []bool{true, true, false}); err != nil {
		t.Fatal(err)
	}
	rng := NumRange{Attr: "eph", Min: 0, Max: 100}
	in := In{Attr: "district", Values: []string{"D1", "D2"}}
	cases := []struct {
		name string
		p    Predicate
		want []bool // row 1 has NaN eph, row 2 an invalid district
	}{
		{"range", rng, []bool{true, false, false}},
		{"not-range", Not{rng}, []bool{false, false, true}},
		{"not-not-range", Not{Not{rng}}, []bool{true, false, false}},
		{"in", in, []bool{true, true, false}},
		{"not-in", Not{in}, []bool{false, false, false}},
		{"not-not-in", Not{Not{in}}, []bool{true, true, false}},
		// De Morgan: NOT(a AND b) == NOT a OR NOT b, with UNKNOWN rows in
		// neither side.
		{"not-and", Not{And{rng, in}}, []bool{false, false, true}},
		{"or-of-nots", Or{Not{rng}, Not{in}}, []bool{false, false, true}},
		// An OR where one side is UNKNOWN and the other TRUE is TRUE;
		// UNKNOWN OR FALSE stays UNKNOWN.
		{"or-unknown-true", Or{rng, in}, []bool{true, true, false}},
		{"and-unknown", And{Not{rng}, in}, []bool{false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.p.Mask(tab)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("mask = %v, want %v (predicate %s)", got, tc.want, tc.p)
				}
			}
		})
	}
}

func TestOr(t *testing.T) {
	tab := sample(t)
	got, err := Select(tab, Or{InCity("Milano"), NumRange{Attr: "eph", Min: 250, Max: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 { // Milano row 2, eph=300 row 4
		t.Fatalf("rows = %d", got.NumRows())
	}
	if _, err := Select(tab, Or{}); err == nil {
		t.Fatal("want error for empty disjunction")
	}
}

func TestAndEmpty(t *testing.T) {
	tab := sample(t)
	if _, err := Select(tab, And{}); err == nil {
		t.Fatal("want error for empty conjunction")
	}
}

func TestPredicateErrors(t *testing.T) {
	tab := sample(t)
	if _, err := Select(tab, NumRange{Attr: "ghost"}); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, err := Select(tab, In{Attr: "eph", Values: []string{"x"}}); err == nil {
		t.Fatal("want error for type mismatch")
	}
}

func TestPredicateStrings(t *testing.T) {
	if s := (NumRange{Attr: "eph", Min: 1, Max: 2}).String(); s != "eph in [1, 2]" {
		t.Fatalf("String = %q", s)
	}
	if s := (In{Attr: "a", Values: []string{"x", "y"}}).String(); s != "a in {x, y}" {
		t.Fatalf("String = %q", s)
	}
}

func TestHelpers(t *testing.T) {
	tab := sample(t)
	got, err := Select(tab, InDistrict("D2"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

func TestParseStakeholder(t *testing.T) {
	for _, s := range []string{"citizen", "public-administration", "energy-scientist", "pa"} {
		if _, err := ParseStakeholder(s); err != nil {
			t.Errorf("ParseStakeholder(%q): %v", s, err)
		}
	}
	if _, err := ParseStakeholder("alien"); err == nil {
		t.Fatal("want error for unknown stakeholder")
	}
}

func TestProposals(t *testing.T) {
	for _, s := range []Stakeholder{Citizen, PublicAdministration, EnergyScientist} {
		p, err := ProposalFor(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.Stakeholder != s {
			t.Fatalf("stakeholder = %s", p.Stakeholder)
		}
		if len(p.Attributes) == 0 || len(p.Reports) == 0 {
			t.Fatalf("%s proposal incomplete: %+v", s, p)
		}
		if p.Response == "" {
			t.Fatalf("%s has no response variable", s)
		}
		// Proposed attributes must exist in the EPC schema.
		for _, a := range p.Attributes {
			if _, ok := epc.Spec(a); !ok {
				t.Fatalf("%s proposes unknown attribute %q", s, a)
			}
		}
	}
	if _, err := ProposalFor(Stakeholder("alien")); err == nil {
		t.Fatal("want error for unknown stakeholder")
	}
}

func TestProposalPAMatchesPaper(t *testing.T) {
	p, err := ProposalFor(PublicAdministration)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's case study: the five thermo-physical attributes at
	// district level with cluster analysis proposed.
	if len(p.Attributes) != 5 {
		t.Fatalf("PA attributes = %v", p.Attributes)
	}
	if p.Level != geo.LevelDistrict {
		t.Fatalf("PA level = %v", p.Level)
	}
	hasCluster := false
	for _, r := range p.Reports {
		if r == ReportClusterering {
			hasCluster = true
		}
	}
	if !hasCluster {
		t.Fatal("PA proposal lacks cluster analysis")
	}
	// Default selection is the residential filter.
	if p.Selection == nil || !strings.Contains(p.Selection.String(), "E.1.1") {
		t.Fatalf("PA selection = %v", p.Selection)
	}
}
