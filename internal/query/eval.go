package query

import (
	"errors"
	"fmt"

	"indice/internal/table"
)

// Evaluator is a predicate compiled for repeated evaluation over many
// tables — the store planner's masked scans run one predicate over every
// segment of every shard, and the naive Predicate.Mask path pays a fresh
// pair of truth buffers per tree node per segment plus a rebuilt value
// set per In leaf. The evaluator hoists all of that out of the loop:
//
//   - In value sets are built once at compile time;
//   - every tree node owns a pair of reusable Kleene truth buffers,
//     resized (never reallocated, after the first table of a given size)
//     on each evaluation;
//   - numeric and categorical leaves evaluate over the table's column
//     slices directly, with no per-row interface dispatch or allocation.
//
// The three-valued semantics are exactly Predicate.Mask's: a comparison
// against an invalid cell is UNKNOWN and never matches, under negation
// either. The randomized planner equivalence tests pin Evaluator.Mask
// bitwise against Predicate.Mask.
//
// An Evaluator is NOT safe for concurrent use: callers that fan out
// across goroutines compile one evaluator per worker.
type Evaluator struct {
	root *evalNode
}

type evalOp int

const (
	opNumRange evalOp = iota
	opIn
	opAnd
	opOr
	opNot
	opOpaque // Predicate implementation outside this package
)

// evalNode mirrors one predicate tree node with its compiled state and
// reusable truth buffers. t[i]/f[i] report definitively-true/-false; a
// row with neither set is UNKNOWN.
type evalNode struct {
	op       evalOp
	attr     string
	min, max float64
	set      map[string]bool
	opaque   Predicate
	kids     []*evalNode
	t, f     []bool
	// tw/fw are the packed truth pair of the encoded path (bit i set =
	// definitively true / definitively false; neither = UNKNOWN), the
	// word-wise analogue of t/f.
	tw, fw []uint64
	// codeSet is the encoded path's per-segment scratch: the In value
	// set translated to a bitset over the current dictionary's codes.
	codeSet []uint64
}

// NewEvaluator compiles the predicate. A nil predicate is an error; use
// the table directly when there is nothing to filter.
func NewEvaluator(p Predicate) (*Evaluator, error) {
	if p == nil {
		return nil, errors.New("query: evaluator on nil predicate")
	}
	return &Evaluator{root: compile(p)}, nil
}

func compile(p Predicate) *evalNode {
	switch p := p.(type) {
	case NumRange:
		return &evalNode{op: opNumRange, attr: p.Attr, min: p.Min, max: p.Max}
	case In:
		set := make(map[string]bool, len(p.Values))
		for _, v := range p.Values {
			set[v] = true
		}
		return &evalNode{op: opIn, attr: p.Attr, set: set}
	case And:
		n := &evalNode{op: opAnd, kids: make([]*evalNode, len(p))}
		for i, sub := range p {
			n.kids[i] = compile(sub)
		}
		return n
	case Or:
		n := &evalNode{op: opOr, kids: make([]*evalNode, len(p))}
		for i, sub := range p {
			n.kids[i] = compile(sub)
		}
		return n
	case Not:
		return &evalNode{op: opNot, kids: []*evalNode{compile(p.P)}}
	default:
		return &evalNode{op: opOpaque, opaque: p}
	}
}

// Mask evaluates the compiled predicate over t and returns the keep-mask:
// true exactly for rows whose three-valued evaluation is definitively
// TRUE — bitwise what the predicate's own Mask returns. The returned
// slice aliases the evaluator's root buffer and is only valid until the
// next Mask call; callers that need to retain it must copy.
func (e *Evaluator) Mask(t *table.Table) ([]bool, error) {
	if err := e.root.eval(t); err != nil {
		return nil, err
	}
	return e.root.t, nil
}

// grow resizes the node's truth buffers to n rows, reusing capacity, and
// clears them.
func (n *evalNode) grow(rows int) {
	if cap(n.t) < rows {
		n.t = make([]bool, rows)
		n.f = make([]bool, rows)
	}
	n.t, n.f = n.t[:rows], n.f[:rows]
	for i := range n.t {
		n.t[i] = false
		n.f[i] = false
	}
}

// growDirty is grow without the clear, for ops that overwrite every
// slot of both buffers.
func (n *evalNode) growDirty(rows int) {
	if cap(n.t) < rows {
		n.t = make([]bool, rows)
		n.f = make([]bool, rows)
	}
	n.t, n.f = n.t[:rows], n.f[:rows]
}

func (n *evalNode) eval(tab *table.Table) error {
	rows := tab.NumRows()
	switch n.op {
	case opNumRange:
		vals, err := tab.Floats(n.attr)
		if err != nil {
			return err
		}
		valid, _ := tab.ValidMask(n.attr)
		n.grow(rows)
		for i, v := range vals {
			if !valid[i] {
				continue
			}
			in := v >= n.min && v <= n.max
			n.t[i] = in
			n.f[i] = !in
		}
	case opIn:
		vals, err := tab.Strings(n.attr)
		if err != nil {
			return err
		}
		valid, _ := tab.ValidMask(n.attr)
		n.grow(rows)
		for i, v := range vals {
			if !valid[i] {
				continue
			}
			in := n.set[v]
			n.t[i] = in
			n.f[i] = !in
		}
	case opAnd:
		if len(n.kids) == 0 {
			return errors.New("query: empty conjunction")
		}
		if err := n.evalKidsInto(tab, func(acc, kid *evalNode, i int) {
			acc.t[i] = acc.t[i] && kid.t[i]
			acc.f[i] = acc.f[i] || kid.f[i]
		}); err != nil {
			return err
		}
	case opOr:
		if len(n.kids) == 0 {
			return errors.New("query: empty disjunction")
		}
		if err := n.evalKidsInto(tab, func(acc, kid *evalNode, i int) {
			acc.t[i] = acc.t[i] || kid.t[i]
			acc.f[i] = acc.f[i] && kid.f[i]
		}); err != nil {
			return err
		}
	case opNot:
		kid := n.kids[0]
		if err := kid.eval(tab); err != nil {
			return err
		}
		n.grow(rows)
		copy(n.t, kid.f)
		copy(n.f, kid.t)
	case opOpaque:
		// Foreign Predicate implementations fall back to their two-valued
		// Mask, exactly as evalTri does.
		m, err := n.opaque.Mask(tab)
		if err != nil {
			return err
		}
		if len(m) != rows {
			return fmt.Errorf("query: predicate mask has %d entries, table has %d rows", len(m), rows)
		}
		n.grow(rows)
		for i, v := range m {
			n.t[i] = v
			n.f[i] = !v
		}
	}
	return nil
}

// evalKidsInto evaluates every child and folds them into this node's
// buffers with the given Kleene combiner, seeding from the first child.
func (n *evalNode) evalKidsInto(tab *table.Table, fold func(acc, kid *evalNode, i int)) error {
	rows := tab.NumRows()
	if err := n.kids[0].eval(tab); err != nil {
		return err
	}
	n.grow(rows)
	copy(n.t, n.kids[0].t)
	copy(n.f, n.kids[0].f)
	for _, kid := range n.kids[1:] {
		if err := kid.eval(tab); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			fold(n, kid, i)
		}
	}
	return nil
}
