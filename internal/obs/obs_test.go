package obs

import (
	"bytes"
	"context"
	"log"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v")
	b := r.Counter("x_total", "ignored second help", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "", "k", "other")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	// Label order must not matter.
	d1 := r.Gauge("y", "", "a", "1", "b", "2")
	d2 := r.Gauge("y", "", "b", "2", "a", "1")
	if d1 != d2 {
		t.Fatal("label order produced distinct series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("z_total", "")
}

// TestWritePrometheusGolden pins the exact exposition output for a small
// registry: sorted families, sorted label signatures, cumulative buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", "route", "/api", "class", "2xx").Add(3)
	r.Gauge("test_in_flight", "In-flight requests.").Set(2)
	h := r.Histogram("test_latency_seconds", "Latency.", Ones)
	for _, v := range []uint64{1, 2, 2, 7} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1"} 1
test_latency_seconds_bucket{le="2"} 3
test_latency_seconds_bucket{le="7"} 4
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 12
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{class="2xx",route="/api"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "path", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped sample %q missing from:\n%s", want, buf.String())
	}
}

func TestWriteProcessMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProcessMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(buf.String(), "# TYPE "+fam+" ") {
			t.Errorf("process metrics missing family %s", fam)
		}
	}
}

func TestSpanRecordsStageHistogram(t *testing.T) {
	r := NewRegistry()
	r.SetSlowOpThreshold(0) // no logs in this test
	ctx, parent := r.StartSpan(context.Background(), "refresh")
	_, child := r.StartSpan(ctx, "kmeans")
	if child.Name() != "refresh.kmeans" {
		t.Fatalf("nested span name = %q, want refresh.kmeans", child.Name())
	}
	child.End()
	parent.End()

	for _, stage := range []string{"refresh", "refresh.kmeans"} {
		h := r.Histogram("indice_stage_seconds", "", Nanos, "stage", stage)
		if s := h.Load(); s.Count != 1 {
			t.Errorf("stage %q recorded %d observations, want 1", stage, s.Count)
		}
	}
}

// TestSlowOpLine forces a slow stage and asserts the structured slow-op
// log line lands on the injected logger.
func TestSlowOpLine(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSlowOpLogger(log.New(&buf, "", 0))
	r.SetSlowOpThreshold(time.Nanosecond)

	_, sp := r.StartSpan(context.Background(), "refresh.kmeans")
	time.Sleep(2 * time.Millisecond) // guaranteed over the 1ns threshold
	sp.End()

	line := buf.String()
	if !strings.Contains(line, "slow-op stage=refresh.kmeans took=") {
		t.Fatalf("slow-op line missing or malformed: %q", line)
	}
	if !strings.Contains(line, "threshold=1ns") {
		t.Fatalf("slow-op line missing threshold: %q", line)
	}
}

func TestSlowOpBelowThresholdSilent(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSlowOpLogger(log.New(&buf, "", 0))
	r.SetSlowOpThreshold(time.Hour)

	_, sp := r.StartSpan(context.Background(), "fast.stage")
	sp.End()
	if buf.Len() != 0 {
		t.Fatalf("fast span logged: %q", buf.String())
	}
}

func TestDisabledRegistryNoopSpan(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	ctx, sp := r.StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("disabled registry returned a live span")
	}
	sp.End() // must not panic on nil receiver
	if sp.Name() != "" {
		t.Fatal("nil span has a name")
	}
	if ctx == nil {
		t.Fatal("disabled StartSpan returned nil context")
	}
}

func TestGaugeAddConcurrentSafeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Add(2.5)
	if got := g.Value(); got != 8.5 {
		t.Fatalf("gauge = %g, want 8.5", got)
	}
}
