package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, sorted
// families, sorted series, cumulative le-buckets for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		series := make([]*metric, len(sigs))
		for i, sig := range sigs {
			series[i] = f.series[sig]
		}
		f.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for i, m := range series {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", sigs[i], formatUint(m.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", sigs[i], formatFloat(m.g.Value()))
			case kindHistogram:
				writeHistogram(bw, f, sigs[i], m.h.Load())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket/_sum/_count triple for one
// series. Only buckets with observations get a line (plus the mandatory
// +Inf), keeping the 252-bucket layout from bloating the scrape.
func writeHistogram(w io.Writer, f *family, sig string, s HistSnapshot) {
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		le := formatFloat(float64(hi) * f.unit)
		writeSample(w, f.name, "_bucket", joinLabels(sig, `le="`+le+`"`), formatUint(cum))
	}
	writeSample(w, f.name, "_bucket", joinLabels(sig, `le="+Inf"`), formatUint(s.Count))
	writeSample(w, f.name, "_sum", sig, formatFloat(float64(s.Sum)*f.unit))
	writeSample(w, f.name, "_count", sig, formatUint(s.Count))
}

func joinLabels(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

func writeSample(w io.Writer, name, suffix, sig, value string) {
	if sig == "" {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, value)
	} else {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, sig, value)
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProcessMetrics emits Go runtime families (goroutines, heap, GC) in
// the same exposition format. Kept separate from Registry state so any
// registry — or none — can compose a full scrape.
func WriteProcessMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bw := bufio.NewWriter(w)

	writeOne := func(name, kind, help, value string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, kind, name, value)
	}
	writeOne("go_goroutines", "gauge", "Number of live goroutines.",
		formatUint(uint64(runtime.NumGoroutine())))
	writeOne("go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.",
		formatUint(ms.HeapAlloc))
	writeOne("go_memstats_heap_sys_bytes", "gauge", "Bytes of heap obtained from the OS.",
		formatUint(ms.HeapSys))
	writeOne("go_memstats_heap_objects", "gauge", "Number of allocated heap objects.",
		formatUint(ms.HeapObjects))
	writeOne("go_gc_cycles_total", "counter", "Completed GC cycles.",
		formatUint(uint64(ms.NumGC)))
	writeOne("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.",
		formatFloat(float64(ms.PauseTotalNs)*Nanos))
	writeOne("go_memstats_next_gc_bytes", "gauge", "Heap size target of the next GC cycle.",
		formatUint(ms.NextGC))
	return bw.Flush()
}

// Handler returns an http.HandlerFunc serving the registry plus process
// metrics as a Prometheus scrape target.
func Handler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
		_ = WriteProcessMetrics(w)
	}
}
