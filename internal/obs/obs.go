// Package obs is the process-wide observability core: lock-free counters
// and gauges, log-bucketed latency histograms with quantile estimation, a
// named metric registry with Prometheus text exposition, and a lightweight
// span facility that records per-stage durations and emits structured
// slow-op log lines.
//
// The package is dependency-free (stdlib only) and designed for hot paths:
// every mutation is a single atomic op, and callers are expected to resolve
// metric handles once (package init or struct construction), not per event.
package obs

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Unit multipliers for histogram exposition. A histogram observes raw
// uint64 values; the unit scales bucket bounds and sums when rendering so
// that a histogram fed nanoseconds can expose seconds.
const (
	Nanos = 1e-9 // observe time.Duration nanoseconds, expose seconds
	Ones  = 1.0  // observe plain counts, expose as-is
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value. It stores a float64 so it can
// carry both integral quantities (resident rows, in-flight requests) and
// fractional ones (drift).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates what a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one (family, label set) series.
type metric struct {
	labels []string // alternating key, value; sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	kind metricKind
	unit float64 // histogram exposition multiplier

	mu     sync.Mutex
	series map[string]*metric // keyed by rendered label signature
}

// Registry is a named collection of metric families. The zero value is not
// usable; create one with NewRegistry or use the package Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	enabled   atomic.Bool  // gates spans and histogram observation
	slowNanos atomic.Int64 // slow-op threshold; <=0 disables slow-op logs
	slowLog   atomic.Pointer[log.Logger]
}

// Default is the process-wide registry every subsystem registers into.
var Default = NewRegistry()

// NewRegistry returns an empty registry with spans enabled and a 500ms
// slow-op threshold.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	r.slowNanos.Store(int64(500 * time.Millisecond))
	return r
}

// SetEnabled toggles span recording and histogram observation. Counters and
// gauges stay live either way — they are single atomic adds, already the
// floor of what "disabled" could cost. Used by the overhead benchmark and
// available as a kill switch.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether spans and histograms record.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetSlowOpThreshold sets the duration above which a finished span emits a
// structured slow-op log line. Zero or negative disables the lines.
func (r *Registry) SetSlowOpThreshold(d time.Duration) { r.slowNanos.Store(int64(d)) }

// SetSlowOpLogger redirects slow-op lines (nil restores the stdlib default
// logger). Tests inject a logger writing to a buffer.
func (r *Registry) SetSlowOpLogger(l *log.Logger) { r.slowLog.Store(l) }

func (r *Registry) slowLogger() *log.Logger {
	if l := r.slowLog.Load(); l != nil {
		return l
	}
	return log.Default()
}

// Counter returns the counter for name and the given label pairs, creating
// family and series on first use. kv is alternating key, value.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	m := r.series(name, help, kindCounter, Ones, kv)
	return m.c
}

// Gauge returns the gauge for name and the given label pairs.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	m := r.series(name, help, kindGauge, Ones, kv)
	return m.g
}

// Histogram returns the histogram for name and the given label pairs. unit
// scales bucket bounds and sums at exposition time (pass Nanos for
// histograms observing time.Duration values under a *_seconds name).
func (r *Registry) Histogram(name, help string, unit float64, kv ...string) *Histogram {
	m := r.series(name, help, kindHistogram, unit, kv)
	m.h.reg = r
	return m.h
}

// series is the get-or-create path shared by all metric kinds.
func (r *Registry) series(name, help string, kind metricKind, unit float64, kv []string) *metric {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %q", name, kv))
	}
	labels := sortLabels(kv)
	sig := labelSignature(labels)

	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, unit: unit, series: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.series[sig]; m != nil {
		return m
	}
	m := &metric{labels: labels}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = NewHistogram()
	}
	f.series[sig] = m
	return m
}

// sortLabels normalises alternating kv pairs into key order.
func sortLabels(kv []string) []string {
	if len(kv) == 0 {
		return nil
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := make([]string, 0, len(ps)*2)
	for _, p := range ps {
		out = append(out, p.k, p.v)
	}
	return out
}

// labelSignature renders sorted label pairs into the exposition form used
// both as map key and output: `k1="v1",k2="v2"` (empty for no labels).
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
