package obs

import (
	"context"
	"time"
)

// spanCtxKey carries the active span through a context so nested stages
// record dotted paths ("refresh.preprocess") without threading names.
type spanCtxKey struct{}

// Span measures one named stage. End records the elapsed time into the
// registry's per-stage histogram (indice_stage_seconds{stage=...}) and, if
// the duration crosses the registry's slow-op threshold, emits a structured
// slow-op log line. A nil *Span is a valid no-op (returned when the
// registry is disabled), so callers never need to branch.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan starts a stage span on the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Default.StartSpan(ctx, name)
}

// StartSpan starts a stage span. If ctx already carries a span, the new
// span's name is parent.child, giving per-stage histograms a stable dotted
// taxonomy. The returned context carries the new span.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !r.enabled.Load() {
		return ctx, nil
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		name = parent.name + "." + name
	}
	s := &Span{reg: r, name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Name returns the span's full dotted name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End finishes the span: the duration lands in the stage histogram and, if
// it meets the slow-op threshold, in the log. Safe on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.Histogram("indice_stage_seconds",
		"Duration of instrumented internal stages, labelled by dotted stage name.",
		Nanos, "stage", s.name).ObserveDuration(d)
	if th := time.Duration(s.reg.slowNanos.Load()); th > 0 && d >= th {
		s.reg.slowLogger().Printf("slow-op stage=%s took=%s threshold=%s", s.name, d, th)
	}
}
