package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks that every probe value lands in a bucket whose
// bounds contain it, across exact buckets, octave boundaries, and the ends
// of the uint64 range.
func TestBucketRoundTrip(t *testing.T) {
	probes := []uint64{
		0, 1, 2, 3, 4, 5, 6, 7, // exact buckets
		8, 9, 10, 11, 15, 16, 17, 31, 32, 63, 64, 65,
		255, 256, 1023, 1024, 1025,
		1<<20 - 1, 1 << 20, 1<<20 + 1,
		1<<40 + 12345,
		1<<62 + 9999,
		math.MaxUint64 - 1, math.MaxUint64,
	}
	for _, v := range probes {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Errorf("value %d landed in bucket %d with bounds [%d,%d]", v, idx, lo, hi)
		}
	}
}

// TestBucketMonotonic checks bucket bounds tile the value space without
// gaps or overlaps.
func TestBucketMonotonic(t *testing.T) {
	_, prevHi := bucketBounds(0)
	if lo, _ := bucketBounds(0); lo != 0 {
		t.Fatalf("first bucket starts at %d, want 0", lo)
	}
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("bucket %d has inverted bounds [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("last bucket ends at %d, want MaxUint64", prevHi)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if s := h.Load(); s.Count != 0 || s.Sum != 0 {
		t.Errorf("empty snapshot count=%d sum=%d", s.Count, s.Sum)
	}
}

// TestQuantileSingleSample: with one observation, min/max clamping must
// make every quantile exact.
func TestQuantileSingleSample(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 12345, 1 << 30} {
		h := NewHistogram()
		h.Observe(v)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got := h.Quantile(q); got != float64(v) {
				t.Errorf("single sample %d: Quantile(%g) = %g, want %d", v, q, got, v)
			}
		}
	}
}

// TestQuantileBucketBoundaries: samples exactly on bucket edges must stay
// within the relative error bound the bucket layout guarantees (~25%).
func TestQuantileBucketBoundaries(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(uint64(i))
	}
	checks := []struct {
		q    float64
		want float64
	}{
		{0.50, n / 2},
		{0.90, n * 9 / 10},
		{0.99, n * 99 / 100},
		{1.00, n},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		rel := math.Abs(got-c.want) / c.want
		if rel > 0.25 {
			t.Errorf("Quantile(%g) = %g, want %g within 25%% (rel err %.3f)", c.q, got, c.want, rel)
		}
	}
	if got := h.Quantile(1); got != n {
		t.Errorf("Quantile(1) = %g, want exact max %d", got, n)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want exact min 1", got)
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	h.Observe(20)
	if got := h.Quantile(-3); got != 10 {
		t.Errorf("Quantile(-3) = %g, want min 10", got)
	}
	if got := h.Quantile(7); got != 20 {
		t.Errorf("Quantile(7) = %g, want max 20", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(uint64(i))
	}
	for i := 901; i <= 1000; i++ {
		b.Observe(uint64(i))
	}
	a.Merge(b)
	s := a.Load()
	if s.Count != 200 {
		t.Fatalf("merged count = %d, want 200", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("merged min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	wantSum := uint64(100*101/2 + (901+1000)*100/2)
	if s.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", s.Sum, wantSum)
	}
	// Median of the merged distribution sits at the 100/200 boundary
	// between the two halves; accept anything inside bucket tolerance of
	// the gap [100, 901].
	med := s.Quantile(0.5)
	if med < 75 || med > 1000 {
		t.Errorf("merged median %g wildly off", med)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(5)
	b.Observe(500)
	sa, sb := a.Load(), b.Load()
	sa.Merge(sb)
	if sa.Count != 2 || sa.Min != 5 || sa.Max != 500 || sa.Sum != 505 {
		t.Fatalf("snapshot merge got count=%d min=%d max=%d sum=%d", sa.Count, sa.Min, sa.Max, sa.Sum)
	}
	var empty HistSnapshot
	empty.Merge(sa)
	if empty.Count != 2 || empty.Min != 5 {
		t.Fatalf("merge into empty got count=%d min=%d", empty.Count, empty.Min)
	}
	before := sa
	sa.Merge(HistSnapshot{})
	if sa != before {
		t.Fatal("merging an empty snapshot changed state")
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(-5 * time.Second)
	if s := h.Load(); s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative duration recorded as count=%d max=%d, want 1/0", s.Count, s.Max)
	}
}

// TestConcurrentMutation hammers a counter, gauge, and histogram from many
// goroutines; run under -race this doubles as the data-race check, and the
// final totals must still be exact.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", Nanos)

	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed*1000 + uint64(i))
			}
		}(uint64(w))
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	s := h.Load()
	if s.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestDisabledHistogramSkipsObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", Nanos)
	r.SetEnabled(false)
	h.Observe(42)
	if s := h.Load(); s.Count != 0 {
		t.Fatalf("disabled histogram recorded %d observations", s.Count)
	}
	r.SetEnabled(true)
	h.Observe(42)
	if s := h.Load(); s.Count != 1 {
		t.Fatalf("re-enabled histogram has count %d, want 1", s.Count)
	}
}
