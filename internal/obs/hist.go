package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..7 get exact unit buckets; every value
// v >= 8 lands in a log-linear bucket — each power-of-two octave is split
// into 4 linear subdivisions, so relative bucket width is bounded by ~25%
// and a quantile estimate is never off by more than a quarter of its value.
// 8 exact + 4 subdivisions x 61 octaves (bit lengths 4..64) = 252 buckets,
// covering the full uint64 range. All buckets are independent atomics, so
// concurrent Observe calls never contend on a lock and two histograms merge
// by summing buckets.
const (
	histExact      = 8                                 // values 0..7 recorded exactly
	histSubBuckets = 4                                 // linear subdivisions per power-of-two octave
	histBuckets    = histExact + histSubBuckets*(64-3) // 252
)

// Histogram is a lock-free log-bucketed histogram of uint64 observations
// (typically latencies in nanoseconds). The zero value is NOT ready; use
// NewHistogram or Registry.Histogram.
type Histogram struct {
	reg     *Registry // nil for unregistered histograms; gates observation
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // math.MaxUint64 until first observation
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an unregistered standalone histogram (always
// enabled). Registered histograms come from Registry.Histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxUint64)
	return h
}

// bucketIdx maps a value to its bucket.
func bucketIdx(v uint64) int {
	if v < histExact {
		return int(v)
	}
	n := bits.Len64(v) // >= 4
	sub := (v >> (n - 3)) & 3
	return histExact + (n-4)*histSubBuckets + int(sub)
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histExact {
		return uint64(i), uint64(i)
	}
	n := uint((i-histExact)/histSubBuckets + 4)
	sub := uint64((i - histExact) % histSubBuckets)
	lo = (4 + sub) << (n - 3)
	hi = lo + 1<<(n-3) - 1
	return lo, hi
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.reg != nil && !h.reg.enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveDuration records a duration's nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistSnapshot is a point-in-time copy of a histogram's state, safe to
// walk, merge, and summarise without racing writers.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Min     uint64 // math.MaxUint64 when empty
	Max     uint64
	Buckets [histBuckets]uint64
}

// Load copies the histogram into a snapshot. The copy is per-field atomic,
// not globally consistent — fine for monitoring.
func (h *Histogram) Load() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge adds another histogram's current contents into h (bucket-wise sum;
// min/max fold). Both histograms remain usable.
func (h *Histogram) Merge(o *Histogram) { h.MergeSnapshot(o.Load()) }

// MergeSnapshot adds a snapshot's contents into h.
func (h *Histogram) MergeSnapshot(s HistSnapshot) {
	if s.Count == 0 {
		return
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for i, n := range s.Buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
	for {
		old := h.min.Load()
		if s.Min >= old || h.min.CompareAndSwap(old, s.Min) {
			break
		}
	}
	for {
		old := h.max.Load()
		if s.Max <= old || h.max.CompareAndSwap(old, s.Max) {
			break
		}
	}
}

// Merge folds another snapshot into this one (plain, single-threaded).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = min(s.MinOr(o.Min), o.Min)
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// MinOr returns Min, or alt when the snapshot is empty.
func (s HistSnapshot) MinOr(alt uint64) uint64 {
	if s.Count == 0 {
		return alt
	}
	return s.Min
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded values by
// walking cumulative bucket counts and interpolating linearly inside the
// landing bucket. The estimate is clamped to the observed [Min, Max], which
// makes single-sample histograms exact at every q. Empty histograms return
// 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			est := float64(lo) + frac*float64(hi-lo)
			if est < float64(s.Min) {
				est = float64(s.Min)
			}
			if est > float64(s.Max) {
				est = float64(s.Max)
			}
			return est
		}
		cum = next
	}
	return float64(s.Max)
}

// Quantile is a convenience over Load().Quantile for live histograms.
func (h *Histogram) Quantile(q float64) float64 { return h.Load().Quantile(q) }

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
