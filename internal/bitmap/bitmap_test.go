package bitmap

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// unionSortedRef and intersectSortedRef are the sorted-slice set algebra
// the planner used before bitmaps; they stay here as the oracle the
// bitmap operations are pinned against.
func unionSortedRef(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func intersectSortedRef(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func fromSorted(xs []int) *Bitmap {
	b := New()
	for _, x := range xs {
		b.Add(uint32(x))
	}
	return b
}

func ords(b *Bitmap) []int {
	out := b.AppendOrdinals(nil)
	if out == nil {
		out = []int{}
	}
	return out
}

// randomSet draws n distinct ordinals. Dense mode packs them into a
// narrow range so containers cross the 4096 array→words threshold;
// sparse mode scatters them across several chunk keys.
func randomSet(rng *rand.Rand, n int, dense bool) []int {
	span := 1 << 22
	if dense {
		span = n + n/4 + 1
	}
	seen := make(map[int]struct{}, n)
	for len(seen) < n {
		seen[rng.Intn(span)] = struct{}{}
	}
	out := make([]int, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func TestBitmapMatchesSortedSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		dense := trial%2 == 0
		a := randomSet(rng, rng.Intn(9000), dense)
		b := randomSet(rng, rng.Intn(9000), !dense || trial%3 == 0)
		ba, bb := fromSorted(a), fromSorted(b)
		if got := ords(ba); !reflect.DeepEqual(got, append([]int{}, a...)) {
			t.Fatalf("trial %d: roundtrip mismatch: got %d ordinals, want %d", trial, len(got), len(a))
		}
		wantOr := unionSortedRef(a, b)
		if got := ords(Or(ba, bb)); !reflect.DeepEqual(got, wantOr) {
			t.Fatalf("trial %d: Or mismatch: got %d ordinals, want %d", trial, len(got), len(wantOr))
		}
		wantAnd := intersectSortedRef(a, b)
		gotAnd := ords(And(ba, bb))
		if len(wantAnd) == 0 {
			wantAnd = []int{}
		}
		if !reflect.DeepEqual(gotAnd, wantAnd) {
			t.Fatalf("trial %d: And mismatch: got %d ordinals, want %d", trial, len(gotAnd), len(wantAnd))
		}
		if got, want := Or(ba, bb).Len(), len(wantOr); got != want {
			t.Fatalf("trial %d: Or Len = %d, want %d", trial, got, want)
		}
		for _, probe := range []int{0, 1, 4095, 4096, 65535, 65536, 1 << 21} {
			want := sort.SearchInts(a, probe) < len(a) && a[sort.SearchInts(a, probe)] == probe
			if got := ba.Contains(uint32(probe)); got != want {
				t.Fatalf("trial %d: Contains(%d) = %v, want %v", trial, probe, got, want)
			}
		}
	}
}

func TestFreezeIsStableUnderLaterAdds(t *testing.T) {
	b := New()
	// Fill past the array→words conversion threshold and across a chunk
	// boundary so both container kinds are in play.
	for i := 0; i < 70000; i += 3 {
		b.Add(uint32(i))
	}
	frozen := b.Freeze()
	before := ords(frozen)
	wantLen := frozen.Len()

	// Keep appending: same chunk first (mutates the builder's last
	// container in place), then enough to convert it and spill into a
	// fresh chunk.
	for i := 70001; i < 140000; i++ {
		b.Add(uint32(i))
	}
	if got := ords(frozen); !reflect.DeepEqual(got, before) {
		t.Fatalf("frozen view changed after later Adds")
	}
	if frozen.Len() != wantLen {
		t.Fatalf("frozen Len changed: %d != %d", frozen.Len(), wantLen)
	}
	if frozen.Contains(70001) {
		t.Fatalf("frozen view sees an ordinal added after Freeze")
	}
	if !b.Contains(70001) {
		t.Fatalf("builder lost an ordinal")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Add on a frozen bitmap did not panic")
		}
	}()
	frozen.Add(1 << 30)
}

func TestAddRejectsDescendingOrdinals(t *testing.T) {
	b := New()
	b.Add(10)
	b.Add(10) // duplicate is a no-op
	if b.Len() != 1 {
		t.Fatalf("duplicate Add changed cardinality: %d", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("descending Add did not panic")
		}
	}()
	b.Add(9)
}

func TestNilAndEmptyOperands(t *testing.T) {
	var nilB *Bitmap
	if nilB.Len() != 0 || nilB.Contains(3) || nilB.AppendOrdinals(nil) != nil {
		t.Fatalf("nil bitmap is not empty")
	}
	one := fromSorted([]int{5, 70000})
	if got := ords(Or(nilB, one)); !reflect.DeepEqual(got, []int{5, 70000}) {
		t.Fatalf("Or with nil lost ordinals: %v", got)
	}
	if And(one, nilB).Len() != 0 || And(New(), one).Len() != 0 {
		t.Fatalf("And with empty operand is not empty")
	}
	// Or with an empty side returns a frozen view of the other — it must
	// not alias the still-mutable builder.
	view := Or(one, nilB)
	one.Add(80000)
	if view.Contains(80000) {
		t.Fatalf("Or result aliases the mutable operand")
	}
}

func FuzzBitmapSetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{2, 3})
	f.Add([]byte{0xff, 0xff, 0, 1}, []byte{})
	f.Fuzz(func(t *testing.T, raw1, raw2 []byte) {
		decode := func(raw []byte) []int {
			// Successive byte pairs are deltas, so sets stay sorted,
			// distinct, and occasionally hop chunk boundaries.
			var xs []int
			cur := -1
			for i := 0; i+1 < len(raw) && len(xs) < 1<<14; i += 2 {
				cur += 1 + int(raw[i])<<8 + int(raw[i+1])
				xs = append(xs, cur)
			}
			return xs
		}
		a, b := decode(raw1), decode(raw2)
		ba, bb := fromSorted(a), fromSorted(b)
		if got := ords(ba); !reflect.DeepEqual(got, append([]int{}, a...)) {
			t.Fatalf("roundtrip mismatch: %v vs %v", got, a)
		}
		if got, want := ords(Or(ba, bb)), unionSortedRef(a, b); !reflect.DeepEqual(got, want) {
			t.Fatalf("Or mismatch: %v vs %v", got, want)
		}
		got, want := ords(And(ba, bb)), intersectSortedRef(a, b)
		if len(want) == 0 {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("And mismatch: %v vs %v", got, want)
		}
	})
}
