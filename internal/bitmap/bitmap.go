// Package bitmap implements roaring-style compressed bitmaps over dense
// row ordinals — the posting-list representation of the store's secondary
// indexes. A bitmap partitions the 32-bit ordinal space into 2^16-wide
// chunks; each chunk is held by a container that is either a sorted
// uint16 array (sparse: at most 4096 entries) or a 1024-word bit field
// (dense), the classic two-level layout of Chambi et al.'s Roaring
// bitmaps. Set algebra on dense chunks runs word-at-a-time — a 64×
// widening of the planner's old element-at-a-time sorted-slice merges.
//
// The store appends row ordinals in strictly ascending order and
// snapshots freeze the postings mid-append, so the builder API is
// deliberately narrow: Add accepts only nondecreasing ordinals, and
// Freeze returns a stable view that shares every full container with the
// builder and privately clones only the one container still being
// appended to. A frozen bitmap never changes, whatever the builder does
// afterwards.
package bitmap

import "math/bits"

const (
	// arrayMaxLen is the sparse/dense crossover: a chunk holding more
	// ordinals than this converts from a sorted uint16 array to a bit
	// field (4096 × 2 bytes = the 8 KiB the bit field costs anyway).
	arrayMaxLen = 4096
	// containerWords is the bit-field size: 2^16 bits.
	containerWords = 1 << 16 / 64
)

// container holds one 2^16-wide chunk. Exactly one of array (sorted,
// ascending) or words is non-nil; n is the chunk cardinality.
type container struct {
	array []uint16
	words []uint64
	n     int
}

func (c *container) clone() *container {
	out := &container{n: c.n}
	if c.words != nil {
		out.words = append([]uint64(nil), c.words...)
	} else {
		out.array = append([]uint16(nil), c.array...)
	}
	return out
}

// toWords converts the container to the dense form in place.
func (c *container) toWords() {
	words := make([]uint64, containerWords)
	for _, v := range c.array {
		words[v>>6] |= 1 << (v & 63)
	}
	c.words = words
	c.array = nil
}

func (c *container) contains(low uint16) bool {
	if c.words != nil {
		return c.words[low>>6]&(1<<(low&63)) != 0
	}
	// Binary search the sorted array.
	lo, hi := 0, len(c.array)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.array[mid] < low {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.array) && c.array[lo] == low
}

// Bitmap is a set of uint32 ordinals. The zero value is an empty,
// appendable bitmap.
type Bitmap struct {
	keys []uint32 // chunk keys (ordinal >> 16), ascending
	cs   []*container
	n    int
	last   int64 // largest ordinal added, -1 when empty
	frozen bool
}

// New returns an empty appendable bitmap.
func New() *Bitmap { return &Bitmap{last: -1} }

// Len returns the cardinality.
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Add appends an ordinal. Ordinals must arrive in nondecreasing order
// (the store's append-only row numbering guarantees this); adding an
// ordinal equal to the last is a no-op, going backwards or adding to a
// frozen bitmap panics. Only the final container is ever mutated, which
// is what makes Freeze cheap and safe.
func (b *Bitmap) Add(x uint32) {
	if b.frozen {
		panic("bitmap: Add on a frozen bitmap")
	}
	if int64(x) <= b.last {
		if int64(x) == b.last {
			return
		}
		panic("bitmap: ordinals must be added in ascending order")
	}
	key := x >> 16
	low := uint16(x)
	var c *container
	if len(b.keys) > 0 && b.keys[len(b.keys)-1] == key {
		c = b.cs[len(b.cs)-1]
	} else {
		c = &container{}
		b.keys = append(b.keys, key)
		b.cs = append(b.cs, c)
	}
	switch {
	case c.words != nil:
		c.words[low>>6] |= 1 << (low & 63)
	case len(c.array) < arrayMaxLen:
		c.array = append(c.array, low)
	default:
		c.toWords()
		c.words[low>>6] |= 1 << (low & 63)
	}
	c.n++
	b.n++
	b.last = int64(x)
}

// Freeze returns an immutable view of the bitmap as of now. Full
// containers are shared (ascending Add never revisits them); the final,
// still-growing container is cloned, so later Adds to the builder are
// invisible to the view. The view's own mutating methods panic.
func (b *Bitmap) Freeze() *Bitmap {
	if b == nil || len(b.cs) == 0 {
		return &Bitmap{last: -1, frozen: true}
	}
	cs := make([]*container, len(b.cs))
	copy(cs, b.cs)
	cs[len(cs)-1] = cs[len(cs)-1].clone()
	return &Bitmap{
		keys:   b.keys[:len(b.keys):len(b.keys)],
		cs:     cs,
		n:      b.n,
		last:   b.last,
		frozen: true,
	}
}

// Contains reports membership.
func (b *Bitmap) Contains(x uint32) bool {
	if b == nil {
		return false
	}
	key := x >> 16
	for i, k := range b.keys {
		if k == key {
			return b.cs[i].contains(uint16(x))
		}
		if k > key {
			return false
		}
	}
	return false
}

// AppendOrdinals appends the set's ordinals to dst in ascending order
// and returns the extended slice.
func (b *Bitmap) AppendOrdinals(dst []int) []int {
	if b == nil {
		return dst
	}
	if cap(dst)-len(dst) < b.n {
		grown := make([]int, len(dst), len(dst)+b.n)
		copy(grown, dst)
		dst = grown
	}
	for i, c := range b.cs {
		base := int(b.keys[i]) << 16
		if c.words != nil {
			for w, word := range c.words {
				for word != 0 {
					dst = append(dst, base+w<<6+bits.TrailingZeros64(word))
					word &= word - 1
				}
			}
		} else {
			for _, v := range c.array {
				dst = append(dst, base+int(v))
			}
		}
	}
	return dst
}

// Or returns the union of a and b as a frozen bitmap. Either may be nil
// (treated as empty). Dense chunks combine word-at-a-time.
func Or(a, b *Bitmap) *Bitmap {
	if a == nil || a.n == 0 {
		return freezeOrShare(b)
	}
	if b == nil || b.n == 0 {
		return freezeOrShare(a)
	}
	out := &Bitmap{last: -1, frozen: true}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			out.pushChunk(a.keys[i], a.cs[i].clone())
			i++
		case a.keys[i] > b.keys[j]:
			out.pushChunk(b.keys[j], b.cs[j].clone())
			j++
		default:
			out.pushChunk(a.keys[i], orContainers(a.cs[i], b.cs[j]))
			i++
			j++
		}
	}
	for ; i < len(a.keys); i++ {
		out.pushChunk(a.keys[i], a.cs[i].clone())
	}
	for ; j < len(b.keys); j++ {
		out.pushChunk(b.keys[j], b.cs[j].clone())
	}
	return out
}

// And returns the intersection of a and b as a frozen bitmap. Either may
// be nil (treated as empty). Dense chunks combine word-at-a-time.
func And(a, b *Bitmap) *Bitmap {
	out := &Bitmap{last: -1, frozen: true}
	if a == nil || b == nil || a.n == 0 || b.n == 0 {
		return out
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if c := andContainers(a.cs[i], b.cs[j]); c.n > 0 {
				out.pushChunk(a.keys[i], c)
			}
			i++
			j++
		}
	}
	return out
}

// freezeOrShare returns b itself when already frozen (set-algebra results
// chain without copying), a frozen view otherwise.
func freezeOrShare(b *Bitmap) *Bitmap {
	if b == nil {
		return &Bitmap{last: -1, frozen: true}
	}
	if b.frozen {
		return b
	}
	return b.Freeze()
}

func (b *Bitmap) pushChunk(key uint32, c *container) {
	b.keys = append(b.keys, key)
	b.cs = append(b.cs, c)
	b.n += c.n
}

func orContainers(x, y *container) *container {
	if x.words == nil && y.words == nil {
		// Sparse ∪ sparse: linear merge of the sorted arrays.
		merged := make([]uint16, 0, len(x.array)+len(y.array))
		i, j := 0, 0
		for i < len(x.array) && j < len(y.array) {
			switch {
			case x.array[i] < y.array[j]:
				merged = append(merged, x.array[i])
				i++
			case x.array[i] > y.array[j]:
				merged = append(merged, y.array[j])
				j++
			default:
				merged = append(merged, x.array[i])
				i++
				j++
			}
		}
		merged = append(merged, x.array[i:]...)
		merged = append(merged, y.array[j:]...)
		c := &container{array: merged, n: len(merged)}
		if len(merged) > arrayMaxLen {
			c.toWords()
		}
		return c
	}
	// At least one side dense: the result is dense. Start from a dense
	// copy and OR the other side in.
	out := &container{words: make([]uint64, containerWords)}
	seed, other := x, y
	if seed.words == nil {
		seed, other = y, x
	}
	copy(out.words, seed.words)
	if other.words != nil {
		for w := range out.words {
			out.words[w] |= other.words[w]
		}
	} else {
		for _, v := range other.array {
			out.words[v>>6] |= 1 << (v & 63)
		}
	}
	for _, w := range out.words {
		out.n += bits.OnesCount64(w)
	}
	return out
}

func andContainers(x, y *container) *container {
	switch {
	case x.words != nil && y.words != nil:
		out := &container{words: make([]uint64, containerWords)}
		for w := range out.words {
			out.words[w] = x.words[w] & y.words[w]
			out.n += bits.OnesCount64(out.words[w])
		}
		return out
	case x.words == nil && y.words == nil:
		out := &container{}
		i, j := 0, 0
		for i < len(x.array) && j < len(y.array) {
			switch {
			case x.array[i] < y.array[j]:
				i++
			case x.array[i] > y.array[j]:
				j++
			default:
				out.array = append(out.array, x.array[i])
				i++
				j++
			}
		}
		out.n = len(out.array)
		return out
	default:
		// Sparse ∩ dense: probe the bit field per sparse entry.
		arr, dense := x, y
		if arr.words != nil {
			arr, dense = y, x
		}
		out := &container{}
		for _, v := range arr.array {
			if dense.words[v>>6]&(1<<(v&63)) != 0 {
				out.array = append(out.array, v)
			}
		}
		out.n = len(out.array)
		return out
	}
}
