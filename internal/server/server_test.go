package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/synth"
)

// testServer spins an httptest server over a small synthetic engine.
func testServer(t *testing.T, withAnalysis bool) *httptest.Server {
	t.Helper()
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 40, 10
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = 1200
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Table, city.Hierarchy, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var an *core.Analysis
	if withAnalysis {
		acfg := core.DefaultAnalysisConfig()
		acfg.KMax = 6
		an, err = eng.Analyze(acfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(eng, an)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestNewNilEngine(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("want error for nil engine")
	}
}

func TestIndex(t *testing.T) {
	ts := testServer(t, false)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"INDICE", "/dashboard/citizen", "/map?level=city"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", code)
	}
}

func TestDashboardRoutes(t *testing.T) {
	ts := testServer(t, true)
	for _, s := range []string{"citizen", "public-administration", "energy-scientist"} {
		code, body := get(t, ts.URL+"/dashboard/"+s)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", s, code)
		}
		if !strings.Contains(body, "<svg") {
			t.Fatalf("%s dashboard has no panels", s)
		}
	}
	if code, _ := get(t, ts.URL+"/dashboard/alien"); code != http.StatusNotFound {
		t.Fatalf("alien status = %d", code)
	}
}

func TestMapRoute(t *testing.T) {
	ts := testServer(t, false)
	for _, level := range []string{"city", "district", "neighbourhood", "unit"} {
		code, body := get(t, ts.URL+"/map?level="+level+"&attr="+epc.AttrUOpaque)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", level, code)
		}
		if !strings.Contains(body, "<svg") {
			t.Fatalf("%s map missing svg", level)
		}
		// Navigation links to the other levels.
		if !strings.Contains(body, "/map?level=") {
			t.Fatalf("%s map missing drill links", level)
		}
	}
	// Raw SVG mode.
	resp, err := http.Get(ts.URL + "/map?level=city&raw=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("raw content type = %q", ct)
	}
	// Bad parameters.
	if code, _ := get(t, ts.URL+"/map?level=galaxy"); code != http.StatusBadRequest {
		t.Fatalf("bad level status = %d", code)
	}
	if code, _ := get(t, ts.URL+"/map?attr=energy_class"); code != http.StatusBadRequest {
		t.Fatalf("categorical attr status = %d", code)
	}
	if code, _ := get(t, ts.URL+"/map?attr=ghost"); code != http.StatusBadRequest {
		t.Fatalf("unknown attr status = %d", code)
	}
}

func TestStatsAPI(t *testing.T) {
	ts := testServer(t, false)
	code, body := get(t, ts.URL+"/api/stats?attr="+epc.AttrEPH)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var got struct {
		Attr  string  `json:"attr"`
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if got.Attr != epc.AttrEPH || got.Count != 1200 || got.Mean <= 0 {
		t.Fatalf("stats = %+v", got)
	}
	if code, _ := get(t, ts.URL+"/api/stats"); code != http.StatusBadRequest {
		t.Fatalf("missing attr status = %d", code)
	}
	if code, _ := get(t, ts.URL+"/api/stats?attr=ghost"); code != http.StatusBadRequest {
		t.Fatalf("unknown attr status = %d", code)
	}
}

func TestZonesAPI(t *testing.T) {
	ts := testServer(t, false)
	code, body := get(t, ts.URL+"/api/zones?level=district&attr="+epc.AttrEPH)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var zones []struct {
		ID    string  `json:"id"`
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.Unmarshal([]byte(body), &zones); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(zones) != 8 {
		t.Fatalf("districts = %d", len(zones))
	}
	total := 0
	for _, z := range zones {
		total += z.Count
	}
	if total != 1200 {
		t.Fatalf("zone counts sum to %d", total)
	}
	if code, _ := get(t, ts.URL+"/api/zones?level=unit"); code != http.StatusBadRequest {
		t.Fatalf("unit level status = %d", code)
	}
}

func TestRulesAndClustersAPI(t *testing.T) {
	ts := testServer(t, true)
	code, body := get(t, ts.URL+"/api/rules?k=5")
	if code != http.StatusOK {
		t.Fatalf("rules status = %d: %s", code, body)
	}
	var rules []struct {
		Antecedent string  `json:"antecedent"`
		Lift       float64 `json:"lift"`
	}
	if err := json.Unmarshal([]byte(body), &rules); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rules) == 0 || len(rules) > 5 {
		t.Fatalf("rules = %d", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Lift > rules[i-1].Lift+1e-12 {
			t.Fatal("rules not sorted by lift")
		}
	}
	if code, _ := get(t, ts.URL+"/api/rules?k=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad k status = %d", code)
	}

	code, body = get(t, ts.URL+"/api/clusters")
	if code != http.StatusOK {
		t.Fatalf("clusters status = %d", code)
	}
	var clusters []struct {
		Cluster int `json:"cluster"`
		Size    int `json:"size"`
	}
	if err := json.Unmarshal([]byte(body), &clusters); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(clusters) < 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
}

func TestAnalyticRoutesWithoutAnalysis(t *testing.T) {
	ts := testServer(t, false)
	if code, _ := get(t, ts.URL+"/api/rules"); code != http.StatusNotFound {
		t.Fatalf("rules status = %d", code)
	}
	if code, _ := get(t, ts.URL+"/api/clusters"); code != http.StatusNotFound {
		t.Fatalf("clusters status = %d", code)
	}
	// The PA dashboard needs analytics and must fail cleanly.
	if code, _ := get(t, ts.URL+"/dashboard/public-administration"); code != http.StatusInternalServerError {
		t.Fatalf("PA dashboard status = %d", code)
	}
	// The citizen dashboard works without analytics.
	if code, _ := get(t, ts.URL+"/dashboard/citizen"); code != http.StatusOK {
		t.Fatalf("citizen dashboard status = %d", code)
	}
}
