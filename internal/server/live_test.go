package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/query"
	"indice/internal/store"
	"indice/internal/synth"
	"indice/internal/table"
)

// liveServer builds an httptest server in live mode over an EMPTY store,
// returning the server, the live loop and a synthetic dataset to ingest.
func liveServer(t *testing.T, certificates int) (*httptest.Server, *core.Live, *synth.Dataset) {
	t.Helper()
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 40, 10
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = certificates
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	scfg := store.DefaultConfig()
	scfg.Shards = 2
	st, err := store.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = 4
	live, err := core.NewLive(st, city.Hierarchy, core.LiveConfig{Analysis: acfg, MinRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLive(live)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, live, ds
}

func post(t *testing.T, url, contentType string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// csvChunks serializes the dataset as typed-CSV batches of at most
// chunkRows rows each.
func csvChunks(t *testing.T, tab *table.Table, chunkRows int) [][]byte {
	t.Helper()
	var chunks [][]byte
	for start := 0; start < tab.NumRows(); start += chunkRows {
		end := start + chunkRows
		if end > tab.NumRows() {
			end = tab.NumRows()
		}
		part, err := tab.Slice(start, end)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := part.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, buf.Bytes())
	}
	return chunks
}

// TestLiveEndToEnd is the acceptance path: start a live server over an
// empty store, ingest >10k generated EPCs through POST /api/ingest from
// concurrent clients, trigger a refresh, and verify that the stats, zones
// and dashboard routes reflect the ingested data.
func TestLiveEndToEnd(t *testing.T) {
	const n = 10500
	ts, live, ds := liveServer(t, n)

	// Before any data: serving routes answer 503, the store route works.
	if code, _ := get(t, ts.URL+"/api/stats?attr="+epc.AttrEPH); code != http.StatusServiceUnavailable {
		t.Fatalf("stats on empty live server = %d", code)
	}
	if code, _ := get(t, ts.URL+"/dashboard/citizen"); code != http.StatusServiceUnavailable {
		t.Fatalf("dashboard on empty live server = %d", code)
	}
	code, body := get(t, ts.URL+"/api/store")
	if code != http.StatusOK {
		t.Fatalf("store status = %d", code)
	}
	var empty struct {
		Rows  int    `json:"rows"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(body), &empty); err != nil || empty.Rows != 0 {
		t.Fatalf("empty store status = %s (%v)", body, err)
	}
	// Refresh on empty store answers 409 (too small), not 500.
	if code, _ := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusConflict {
		t.Fatalf("refresh on empty store = %d", code)
	}

	// Ingest the dataset as concurrent CSV batches.
	chunks := csvChunks(t, ds.Table, 1500)
	var wg sync.WaitGroup
	errc := make(chan error, len(chunks))
	for _, chunk := range chunks {
		wg.Add(1)
		go func(chunk []byte) {
			defer wg.Done()
			code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunk)
			if code != http.StatusOK {
				errc <- fmt.Errorf("ingest status %d: %s", code, body)
			}
		}(chunk)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The store saw everything — including its live (pre-refresh)
	// summaries from the incremental stats and zone index.
	code, body = get(t, ts.URL+"/api/store?attr="+epc.AttrEPH+"&by="+epc.AttrDistrict)
	if code != http.StatusOK {
		t.Fatalf("store status = %d", code)
	}
	var liveView struct {
		LiveStats struct {
			Count int     `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"live_stats"`
		LiveCounts map[string]int `json:"live_counts"`
	}
	if err := json.Unmarshal([]byte(body), &liveView); err != nil {
		t.Fatal(err)
	}
	if liveView.LiveStats.Count != n || liveView.LiveStats.Mean <= 0 {
		t.Fatalf("live stats = %+v", liveView.LiveStats)
	}
	indexed := 0
	for _, c := range liveView.LiveCounts {
		indexed += c
	}
	if indexed != n {
		t.Fatalf("live district counts cover %d of %d rows", indexed, n)
	}
	if code, _ := get(t, ts.URL+"/api/store?attr=energy_class"); code != http.StatusBadRequest {
		t.Fatalf("untracked live attr = %d", code)
	}
	var status struct {
		Rows     int    `json:"rows"`
		Accepted uint64 `json:"accepted"`
		Shards   []struct {
			Rows int `json:"rows"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("bad store JSON: %v", err)
	}
	if status.Rows != n || status.Accepted != n {
		t.Fatalf("store rows = %d accepted = %d, want %d", status.Rows, status.Accepted, n)
	}
	spread := 0
	for _, sh := range status.Shards {
		if sh.Rows > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("ingestion landed on %d shards", spread)
	}

	// Trigger the refresh; it publishes the analysis.
	code, body = post(t, ts.URL+"/api/refresh", "application/json", nil)
	if code != http.StatusOK {
		t.Fatalf("refresh = %d: %s", code, body)
	}
	var ref struct {
		Rows        int `json:"rows"`
		ServingRows int `json:"serving_rows"`
	}
	if err := json.Unmarshal([]byte(body), &ref); err != nil {
		t.Fatal(err)
	}
	if ref.Rows != n || ref.ServingRows == 0 || ref.ServingRows > n {
		t.Fatalf("refresh = %+v", ref)
	}

	// /api/stats reflects the ingested data (preprocessing may drop
	// outlier rows, so the count is bounded by the ingested total).
	code, body = get(t, ts.URL+"/api/stats?attr="+epc.AttrEPH)
	if code != http.StatusOK {
		t.Fatalf("stats = %d: %s", code, body)
	}
	var st struct {
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != ref.ServingRows || st.Mean <= 0 {
		t.Fatalf("stats = %+v (serving %d)", st, ref.ServingRows)
	}

	// /api/zones covers every served certificate.
	code, body = get(t, ts.URL+"/api/zones?level=district&attr="+epc.AttrEPH)
	if code != http.StatusOK {
		t.Fatalf("zones = %d", code)
	}
	var zones []struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(body), &zones); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, z := range zones {
		total += z.Count
	}
	if total != ref.ServingRows {
		t.Fatalf("zone counts sum to %d, serving %d", total, ref.ServingRows)
	}

	// Dashboards render from the published analysis.
	for _, sk := range []query.Stakeholder{query.Citizen, query.PublicAdministration} {
		code, page := get(t, ts.URL+"/dashboard/"+string(sk))
		if code != http.StatusOK {
			t.Fatalf("%s dashboard = %d", sk, code)
		}
		if !strings.Contains(page, "<svg") {
			t.Fatalf("%s dashboard has no panels", sk)
		}
		if !strings.Contains(page, fmt.Sprintf("%d certificates", ref.ServingRows)) {
			t.Fatalf("%s dashboard does not report the served row count", sk)
		}
	}

	// More data after the refresh: the published state stays pinned until
	// the next refresh (snapshot isolation at the serving layer).
	rec := store.Record{
		epc.AttrCertificateID: "EPC-X000001",
		epc.AttrLatitude:      45.07, epc.AttrLongitude: 7.68,
		epc.AttrEPH: 140.0, epc.AttrEnergyClass: "D",
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	code, body = post(t, ts.URL+"/api/ingest", "application/json", payload)
	if code != http.StatusOK {
		t.Fatalf("json ingest = %d: %s", code, body)
	}
	var ing struct {
		Accepted int `json:"accepted"`
		Rows     int `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != 1 || ing.Rows != n+1 {
		t.Fatalf("json ingest = %+v", ing)
	}
	code, body = get(t, ts.URL+"/api/stats?attr="+epc.AttrEPH)
	if code != http.StatusOK {
		t.Fatal("stats after ingest")
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != ref.ServingRows {
		t.Fatal("published state changed without a refresh")
	}
	if live.Current().Rows != n {
		t.Fatalf("published rows = %d", live.Current().Rows)
	}
}

func TestIngestFormatsAndErrors(t *testing.T) {
	ts, live, ds := liveServer(t, 300)

	// Binary batch.
	var bin bytes.Buffer
	if err := ds.Table.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, ts.URL+"/api/ingest", "application/octet-stream", bin.Bytes())
	if code != http.StatusOK {
		t.Fatalf("binary ingest = %d: %s", code, body)
	}
	if live.Store().Rows() != 300 {
		t.Fatalf("rows = %d", live.Store().Rows())
	}

	// JSON array of records.
	recs := []store.Record{
		{epc.AttrCertificateID: "a", epc.AttrEPH: 120.5},
		{epc.AttrCertificateID: "b", epc.AttrEPH: "77.25"},
	}
	payload, _ := json.Marshal(recs)
	code, body = post(t, ts.URL+"/api/ingest", "application/json; charset=utf-8", payload)
	if code != http.StatusOK {
		t.Fatalf("json array ingest = %d: %s", code, body)
	}
	var res struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil || res.Accepted != 2 {
		t.Fatalf("json array ingest = %s", body)
	}

	// Unknown attributes are rejected per record, reported in issues.
	payload, _ = json.Marshal(store.Record{"certificate_id": "c", "warp_drive": 1.0})
	code, body = post(t, ts.URL+"/api/ingest", "application/json", payload)
	if code != http.StatusOK {
		t.Fatalf("rejecting ingest = %d", code)
	}
	var rej struct {
		Accepted int      `json:"accepted"`
		Rejected int      `json:"rejected"`
		Issues   []string `json:"issues"`
	}
	if err := json.Unmarshal([]byte(body), &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Accepted != 0 || rej.Rejected != 1 || len(rej.Issues) == 0 {
		t.Fatalf("rejection = %+v", rej)
	}

	// Malformed bodies answer 400, unsupported types 415.
	if code, _ := post(t, ts.URL+"/api/ingest", "application/json", []byte("{nope")); code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", code)
	}
	// Concatenated / newline-delimited JSON documents are rejected rather
	// than silently truncated to the first one.
	ndjson := []byte("{\"certificate_id\":\"x\"}\n{\"certificate_id\":\"y\"}")
	if code, body := post(t, ts.URL+"/api/ingest", "application/json", ndjson); code != http.StatusBadRequest {
		t.Fatalf("ndjson = %d: %s", code, body)
	}
	if code, _ := post(t, ts.URL+"/api/ingest", "text/csv", []byte("no-typed-header\n1")); code != http.StatusBadRequest {
		t.Fatalf("bad CSV = %d", code)
	}
	if code, _ := post(t, ts.URL+"/api/ingest", "application/octet-stream", []byte("XXXX")); code != http.StatusBadRequest {
		t.Fatalf("bad binary = %d", code)
	}
	if code, _ := post(t, ts.URL+"/api/ingest", "text/plain", []byte("hi")); code != http.StatusUnsupportedMediaType {
		t.Fatalf("unsupported type = %d", code)
	}
}

func TestMethodAndBodyLimits(t *testing.T) {
	ts, _, _ := liveServer(t, 300)

	// Wrong methods are rejected with Allow headers.
	resp, err := http.Get(ts.URL + "/api/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET ingest = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	if code, _ := post(t, ts.URL+"/api/stats", "application/json", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats = %d", code)
	}
	if code, _ := post(t, ts.URL+"/", "application/json", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST index = %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/refresh", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE refresh = %d", resp.StatusCode)
	}
	// HEAD rides along with GET.
	resp, err = http.Head(ts.URL + "/api/store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD store = %d", resp.StatusCode)
	}

	// Oversized ingest bodies are cut off with 413.
	huge := bytes.Repeat([]byte("x"), int(maxIngestBody)+1)
	code, _ := post(t, ts.URL+"/api/ingest", "text/csv", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d", code)
	}
}

// TestStaticServerStoreRoutes pins static-mode behavior of the live-only
// routes.
func TestStaticServerStoreRoutes(t *testing.T) {
	ts := testServer(t, false)
	if code, _ := get(t, ts.URL+"/api/store"); code != http.StatusNotFound {
		t.Fatalf("static store = %d", code)
	}
	if code, _ := post(t, ts.URL+"/api/ingest", "application/json", []byte("{}")); code != http.StatusNotFound {
		t.Fatalf("static ingest = %d", code)
	}
	if code, _ := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusNotFound {
		t.Fatalf("static refresh = %d", code)
	}
}

// TestStoreReportsIncrementalRefreshStats drives one full and one
// incremental refresh through the HTTP surface and checks that
// GET /api/store reports the refresh split, the store generation and the
// last delta's size/reuse/drift numbers.
func TestStoreReportsIncrementalRefreshStats(t *testing.T) {
	ts, _, ds := liveServer(t, 900)
	half := ds.Table.NumRows() / 2
	for _, chunk := range csvChunks(t, ds.Table, half)[:1] {
		if code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunk); code != http.StatusOK {
			t.Fatalf("ingest = %d: %s", code, body)
		}
	}
	if code, body := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
		t.Fatalf("first refresh = %d: %s", code, body)
	}
	// Second half: same distribution, so the refresh takes the fast path.
	for _, chunk := range csvChunks(t, ds.Table, half)[1:] {
		if code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunk); code != http.StatusOK {
			t.Fatalf("ingest = %d: %s", code, body)
		}
	}
	if code, body := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
		t.Fatalf("second refresh = %d: %s", code, body)
	}

	code, body := get(t, ts.URL+"/api/store")
	if code != http.StatusOK {
		t.Fatalf("store = %d", code)
	}
	var resp struct {
		Generation           uint64 `json:"generation"`
		Refreshes            uint64 `json:"refreshes"`
		FullRefreshes        uint64 `json:"full_refreshes"`
		IncrementalRefreshes uint64 `json:"incremental_refreshes"`
		Published            struct {
			Incremental bool    `json:"incremental"`
			DeltaRows   int     `json:"delta_rows"`
			ReusedRows  int     `json:"reused_rows"`
			Drift       float64 `json:"drift"`
		} `json:"published"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("store body: %v", err)
	}
	if resp.Generation == 0 {
		t.Fatal("store generation not reported")
	}
	if resp.Refreshes != 2 || resp.FullRefreshes != 1 || resp.IncrementalRefreshes != 1 {
		t.Fatalf("refresh split = %d total / %d full / %d incremental",
			resp.Refreshes, resp.FullRefreshes, resp.IncrementalRefreshes)
	}
	if !resp.Published.Incremental {
		t.Fatal("published state not marked incremental")
	}
	if resp.Published.DeltaRows <= 0 || resp.Published.ReusedRows <= 0 {
		t.Fatalf("delta/reuse stats = %d/%d", resp.Published.DeltaRows, resp.Published.ReusedRows)
	}
	if resp.Published.Drift < 0 {
		t.Fatalf("drift = %v", resp.Published.Drift)
	}

	// A refresh with nothing new must not change the split (generation
	// skip) — exercised through the HTTP surface.
	if code, body := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
		t.Fatalf("no-op refresh = %d: %s", code, body)
	}
	_, body = get(t, ts.URL+"/api/store")
	var after struct {
		Refreshes uint64 `json:"refreshes"`
	}
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Refreshes != 2 {
		t.Fatalf("no-op refresh re-ran the pipeline (refreshes = %d)", after.Refreshes)
	}
}
