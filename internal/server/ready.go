package server

import (
	"encoding/json"
	"net/http"
)

// writeJSONBody encodes after the status line is already written (the
// writeJSON helper would implicitly answer 200).
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// readyResponse is the JSON shape of GET /api/ready. Unlike the
// always-200 /api/health (a report), readiness is a gate: load
// balancers and the coordinator route traffic away from a 503.
type readyResponse struct {
	Ready bool   `json:"ready"`
	Mode  string `json:"mode"`
	// Reason explains a 503 (starting, lagging, no replicas).
	Reason    string `json:"reason,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
	LagEpochs uint64 `json:"lag_epochs,omitempty"`
}

// handleReady answers 200 once the process can serve correct data:
// static servers immediately, live servers once the first snapshot
// analysis is published, replicas additionally only while within
// ReadyMaxLag epochs of their leader, coordinators once at least one
// reachable replica has synced.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{Ready: true, Mode: "static"}
	switch {
	case s.coord != nil:
		resp.Mode = "coordinator"
		if err := s.coord.Ready(); err != nil {
			resp.Ready, resp.Reason = false, err.Error()
		} else if e, err := s.coord.Epoch(); err == nil {
			resp.Epoch = e
		}
	case s.live != nil:
		resp.Mode = "live"
		if s.leader != nil {
			resp.Mode = "leader"
		}
		pub := s.live.Current()
		if pub == nil {
			resp.Ready, resp.Reason = false, "no analysis published yet"
		} else {
			resp.Epoch = pub.Epoch
		}
		if s.replica != nil {
			resp.Mode = "replica"
			lag, synced := s.replica.Lag()
			resp.LagEpochs = lag
			switch {
			case !synced:
				resp.Ready, resp.Reason = false, "no sync from the leader yet"
			case lag > s.readyMaxLag:
				resp.Ready = false
				resp.Reason = "replica lagging the leader"
			}
		}
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, &resp)
		return
	}
	writeJSON(w, resp)
}
