package server

import (
	"container/list"
	"sync"
)

// queryCache is the LRU result cache behind /api/query. Entries are
// keyed by (snapshot epoch, canonical query, output options), so a
// response computed under one published state can never serve another:
// a refresh publishes a new epoch, every key changes, and the stale
// generation is purged eagerly the first time the new epoch is seen.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	epoch    uint64
}

type cacheEntry struct {
	key string
	val *queryResponse
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &queryCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// sync drops every entry of earlier epochs once a newer one is seen.
// Caller holds c.mu.
func (c *queryCache) sync(epoch uint64) {
	if epoch <= c.epoch {
		return
	}
	c.epoch = epoch
	c.ll.Init()
	c.entries = make(map[string]*list.Element, c.capacity)
}

// get returns the cached response for key at the given epoch, if any.
func (c *queryCache) get(epoch uint64, key string) (*queryResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync(epoch)
	el, ok := c.entries[key]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// put stores a response computed at the given epoch, evicting the least
// recently used entry beyond capacity. Responses from epochs older than
// the newest seen are not cached (their published state is already
// superseded).
func (c *queryCache) put(epoch uint64, key string, val *queryResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync(epoch)
	if epoch != c.epoch {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters (read through the obs registry —
// the same series /metrics exports, so they aggregate process-wide
// across server instances) and the current per-instance entry count.
func (c *queryCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return mCacheHits.Value(), mCacheMisses.Value(), c.ll.Len()
}
