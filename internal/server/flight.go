package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical /api/query cache misses
// into one computation. Under a cold cache and N concurrent clients
// asking the same few query shapes, letting every request compute (or
// fan out to replicas) independently multiplies the work N-fold and —
// on the coordinator — can stampede the replicas so hard that no
// single request finishes before its legs time out, which keeps the
// cache cold forever. With a flight per cache key, the first request
// computes and every concurrent duplicate waits for that one result.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	resp *queryResponse
	err  error
}

// do runs fn once per key at a time. The caller that starts the flight
// computes; every concurrent caller with the same key blocks until the
// result lands (or its own ctx is cancelled) and shares it. The second
// return reports whether the result came from another caller's flight.
//
// fn must not be bound to the waiters' request contexts — the leader
// passes its own detached context so one departing client cannot fail
// everyone else's request.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*queryResponse, error)) (*queryResponse, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		mQueryCoalesced.Inc()
		select {
		case <-f.done:
			return f.resp, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, false, f.err
}
