// Package server exposes the INDICE dashboards over HTTP, restoring the
// "dynamic and navigable" interaction of the paper's folium front end:
// the browser drills through zoom levels and attributes by navigating
// links, and every map/panel is regenerated server-side from the current
// engine state. JSON endpoints expose the aggregates for programmatic
// clients.
package server

import (
	"encoding/json"
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strings"

	"indice/internal/assoc"
	"indice/internal/core"
	"indice/internal/dashboard"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/query"
	"indice/internal/stats"
)

// Server serves the dashboards of one engine. The engine is treated as
// read-only after construction; run Preprocess/Analyze before wiring it.
type Server struct {
	eng *core.Engine
	an  *core.Analysis
	mux *http.ServeMux
}

// New builds a Server. The analysis may be nil; analytic routes then
// return 404.
func New(eng *core.Engine, an *core.Analysis) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	s := &Server{eng: eng, an: an, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/dashboard/", s.handleDashboard)
	s.mux.HandleFunc("/map", s.handleMap)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/zones", s.handleZones)
	s.mux.HandleFunc("/api/rules", s.handleRules)
	s.mux.HandleFunc("/api/clusters", s.handleClusters)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleIndex lists the navigable views.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>INDICE</title></head><body>")
	b.WriteString("<h1>INDICE</h1>")
	fmt.Fprintf(&b, "<p>%d certificates loaded.</p>", s.eng.Table().NumRows())
	b.WriteString("<h2>Dashboards</h2><ul>")
	for _, st := range []query.Stakeholder{query.Citizen, query.PublicAdministration, query.EnergyScientist} {
		fmt.Fprintf(&b, `<li><a href="/dashboard/%s">%s</a></li>`, st, st)
	}
	b.WriteString("</ul><h2>Energy maps (drill-down)</h2><ul>")
	for _, l := range []geo.Level{geo.LevelCity, geo.LevelDistrict, geo.LevelNeighbourhood, geo.LevelUnit} {
		fmt.Fprintf(&b, `<li><a href="/map?level=%s&attr=%s">%s zoom</a></li>`, l, epc.AttrEPH, l)
	}
	b.WriteString("</ul><h2>APIs</h2><ul>")
	for _, api := range []string{
		"/api/stats?attr=" + epc.AttrEPH,
		"/api/zones?level=district&attr=" + epc.AttrEPH,
		"/api/rules?k=10",
		"/api/clusters",
	} {
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, api, html.EscapeString(api))
	}
	b.WriteString("</ul></body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleDashboard renders a full stakeholder dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/dashboard/")
	st, err := query.ParseStakeholder(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	page, err := s.eng.Dashboard(st, s.an)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// handleMap renders one energy map: /map?level=district&attr=eph. The
// SVG is wrapped in a small HTML page with drill links so the user can
// navigate zoom levels, the paper's core interaction.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	levelName := r.URL.Query().Get("level")
	if levelName == "" {
		levelName = "city"
	}
	level, err := geo.ParseLevel(levelName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		attr = epc.AttrEPH
	}
	if typ, err := s.eng.Table().TypeOf(attr); err != nil || typ.String() != "float64" {
		http.Error(w, fmt.Sprintf("unknown numeric attribute %q", attr), http.StatusBadRequest)
		return
	}
	svg, kind, err := dashboard.RenderMap(s.eng.Table(), s.eng.Hierarchy(), dashboard.MapSpec{
		Title: fmt.Sprintf("Average %s — %s zoom", attr, level),
		Level: level,
		Attr:  attr,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("raw") == "1" {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, svg)
		return
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>INDICE map</title></head><body>")
	fmt.Fprintf(&b, "<p>%s map — drill: ", kind)
	for _, l := range []geo.Level{geo.LevelCity, geo.LevelDistrict, geo.LevelNeighbourhood, geo.LevelUnit} {
		if l == level {
			fmt.Fprintf(&b, "<b>%s</b> ", l)
		} else {
			fmt.Fprintf(&b, `<a href="/map?level=%s&attr=%s">%s</a> `, l, html.EscapeString(attr), l)
		}
	}
	b.WriteString("| attribute: ")
	for _, a := range []string{epc.AttrEPH, epc.AttrUOpaque, epc.AttrUWindows, epc.AttrETAH} {
		if a == attr {
			fmt.Fprintf(&b, "<b>%s</b> ", a)
		} else {
			fmt.Fprintf(&b, `<a href="/map?level=%s&attr=%s">%s</a> `, level, a, a)
		}
	}
	b.WriteString("</p>")
	b.WriteString(svg)
	b.WriteString("</body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// statsResponse is the JSON shape of /api/stats.
type statsResponse struct {
	Attr   string  `json:"attr"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		http.Error(w, "attr query parameter required", http.StatusBadRequest)
		return
	}
	vals, err := s.eng.Table().ValidFloats(attr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, err := stats.Describe(vals)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, statsResponse{
		Attr: attr, Count: d.Count, Mean: d.Mean, StdDev: d.StdDev,
		Min: d.Min, Q1: d.Q1, Median: d.Median, Q3: d.Q3, Max: d.Max,
	})
}

// zoneResponse is the JSON shape of one /api/zones element.
type zoneResponse struct {
	ID    string  `json:"id"`
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
}

func (s *Server) handleZones(w http.ResponseWriter, r *http.Request) {
	levelName := r.URL.Query().Get("level")
	if levelName == "" {
		levelName = "district"
	}
	level, err := geo.ParseLevel(levelName)
	if err != nil || level == geo.LevelUnit {
		http.Error(w, "level must be city, district or neighbourhood", http.StatusBadRequest)
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		attr = epc.AttrEPH
	}
	zs, err := dashboard.AggregateByZone(s.eng.Table(), s.eng.Hierarchy(), level, attr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]zoneResponse, 0, len(zs))
	for _, z := range zs {
		mean := z.Mean
		if math.IsNaN(mean) {
			// Zones without data serialize with mean 0 and count 0; JSON
			// cannot carry NaN.
			mean = 0
		}
		out = append(out, zoneResponse{ID: z.Zone.ID, Name: z.Zone.Name, Count: z.Count, Mean: mean})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

// ruleResponse is the JSON shape of one /api/rules element.
type ruleResponse struct {
	Antecedent string  `json:"antecedent"`
	Consequent string  `json:"consequent"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if s.an == nil {
		http.Error(w, "analysis not available", http.StatusNotFound)
		return
	}
	k := 20
	if raw := r.URL.Query().Get("k"); raw != "" {
		if _, err := fmt.Sscanf(raw, "%d", &k); err != nil || k < 1 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
	}
	top := assoc.TopK(s.an.Rules, assoc.ByLift, k)
	out := make([]ruleResponse, 0, len(top))
	for _, rule := range top {
		out = append(out, ruleResponse{
			Antecedent: rule.Antecedent.String(),
			Consequent: rule.Consequent.String(),
			Support:    rule.Support,
			Confidence: rule.Confidence,
			Lift:       rule.Lift,
		})
	}
	writeJSON(w, out)
}

// clusterResponse is the JSON shape of one /api/clusters element.
type clusterResponse struct {
	Cluster      int     `json:"cluster"`
	Size         int     `json:"size"`
	MeanResponse float64 `json:"mean_response"`
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if s.an == nil || s.an.Clustering == nil {
		http.Error(w, "analysis not available", http.StatusNotFound)
		return
	}
	out := make([]clusterResponse, s.an.ChosenK)
	for c := 0; c < s.an.ChosenK; c++ {
		mean := s.an.ClusterResponseMeans[c]
		if math.IsNaN(mean) {
			mean = 0
		}
		out[c] = clusterResponse{
			Cluster:      c,
			Size:         s.an.Clustering.Sizes[c],
			MeanResponse: mean,
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
