// Package server exposes the INDICE dashboards over HTTP, restoring the
// "dynamic and navigable" interaction of the paper's folium front end:
// the browser drills through zoom levels and attributes by navigating
// links, and every map/panel is regenerated server-side from the current
// engine state. JSON endpoints expose the aggregates for programmatic
// clients.
//
// The server runs in one of two modes. Static mode (New) serves one
// frozen engine+analysis, the paper's batch workflow. Live mode (NewLive)
// serves from a core.Live loop over a streaming store: every request
// reads the last atomically published snapshot state, POST /api/ingest
// appends certificates (JSON records, typed CSV or binary batches),
// POST /api/refresh re-runs the pipeline, and GET /api/store reports the
// store shape. All routes enforce request methods and bounded bodies.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"log"
	"math"
	"mime"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"indice/internal/assoc"
	"indice/internal/core"
	"indice/internal/dashboard"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/obs"
	"indice/internal/query"
	"indice/internal/scaleout"
	"indice/internal/stats"
	"indice/internal/store"
)

// maxIngestBody bounds POST /api/ingest bodies (batches); maxSmallBody
// bounds everything else (queries carry no meaningful body).
const (
	maxIngestBody int64 = 64 << 20
	maxSmallBody  int64 = 1 << 20
)

// Server serves the dashboards of one engine (static mode) or of a live
// ingestion loop (live mode). Scale-out roles layer on top of live mode:
// a leader additionally serves the replication stream, a replica
// additionally serves epoch-pinned partial queries (and rejects ingest),
// and a coordinator serves scatter-gather queries with no local data at
// all (see NewLiveCluster and NewCoordinator).
type Server struct {
	eng     *core.Engine
	an      *core.Analysis
	live    *core.Live
	mux     *http.ServeMux
	cache   *queryCache
	flights flightGroup

	leader      *scaleout.Leader
	replica     *scaleout.Replica
	coord       *scaleout.Coordinator
	readyMaxLag uint64
}

// New builds a static Server over a preprocessed engine. The engine is
// treated as read-only; the analysis may be nil (analytic routes then
// return 404).
func New(eng *core.Engine, an *core.Analysis) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	s := &Server{eng: eng, an: an, cache: newQueryCache(0)}
	s.routes()
	return s, nil
}

// NewLive builds a Server over a live ingestion loop. Requests serve from
// live.Current(); until the first successful refresh publishes a state,
// data routes answer 503 while ingestion and store routes work.
func NewLive(live *core.Live) (*Server, error) {
	if live == nil {
		return nil, fmt.Errorf("server: nil live loop")
	}
	s := &Server{live: live, cache: newQueryCache(0)}
	s.routes()
	return s, nil
}

// ClusterConfig attaches a scale-out role to a live server: a Leader
// adds the replication stream endpoints, a Replica adds the epoch-pinned
// partial-query endpoint (and makes ingest read-only). ReadyMaxLag is
// the replica readiness gate: /api/ready answers 503 while the replica
// trails its leader by more than this many epochs (default 0 — any lag
// beyond the current sync is unready).
type ClusterConfig struct {
	Leader      *scaleout.Leader
	Replica     *scaleout.Replica
	ReadyMaxLag uint64
}

// NewLiveCluster builds a live Server carrying a scale-out role. A
// replica's apply hook is wired to the refresh loop so newly replicated
// rows publish without waiting out the refresh interval.
func NewLiveCluster(live *core.Live, cc ClusterConfig) (*Server, error) {
	if live == nil {
		return nil, fmt.Errorf("server: nil live loop")
	}
	if cc.Leader != nil && cc.Replica != nil {
		return nil, fmt.Errorf("server: a process is a leader or a replica, not both")
	}
	s := &Server{
		live: live, cache: newQueryCache(0),
		leader: cc.Leader, replica: cc.Replica, readyMaxLag: cc.ReadyMaxLag,
	}
	if s.replica != nil {
		s.replica.OnApply = live.RefreshAsync
	}
	s.routes()
	return s, nil
}

// NewCoordinator builds a Server that serves /api/query by scatter-
// gather over the coordinator's replicas. It holds no engine, store or
// live loop.
func NewCoordinator(coord *scaleout.Coordinator) (*Server, error) {
	if coord == nil {
		return nil, fmt.Errorf("server: nil coordinator")
	}
	s := &Server{coord: coord, cache: newQueryCache(0)}
	s.routesCoordinator()
	return s, nil
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.handle("/", maxSmallBody, s.handleIndex, http.MethodGet)
	s.handle("/dashboard/", maxSmallBody, s.handleDashboard, http.MethodGet)
	s.handle("/map", maxSmallBody, s.handleMap, http.MethodGet)
	s.handle("/api/stats", maxSmallBody, s.handleStats, http.MethodGet)
	s.handle("/api/zones", maxSmallBody, s.handleZones, http.MethodGet)
	s.handle("/api/rules", maxSmallBody, s.handleRules, http.MethodGet)
	s.handle("/api/clusters", maxSmallBody, s.handleClusters, http.MethodGet)
	s.handle("/api/query", maxSmallBody, s.handleQuery, http.MethodGet, http.MethodPost)
	s.handle("/api/presets", maxSmallBody, s.handlePresets, http.MethodGet)
	s.handle("/api/store", maxSmallBody, s.handleStore, http.MethodGet)
	s.handle("/api/ingest", maxIngestBody, s.handleIngest, http.MethodPost)
	s.handle("/api/refresh", maxSmallBody, s.handleRefresh, http.MethodPost)
	s.handle("/api/checkpoint", maxSmallBody, s.handleCheckpoint, http.MethodPost)
	s.handle("/api/health", maxSmallBody, s.handleHealth, http.MethodGet)
	s.handle("/api/ready", maxSmallBody, s.handleReady, http.MethodGet)
	s.handle("/metrics", maxSmallBody, obs.Handler(obs.Default), http.MethodGet)
	if s.leader != nil {
		s.handle("/api/replicate/info", maxSmallBody, s.handleReplicateInfo, http.MethodGet)
		s.handle("/api/replicate/segments", maxSmallBody, s.leader.ServeSegments, http.MethodGet)
		s.handle("/api/replicate/delta", maxSmallBody, s.leader.ServeDelta, http.MethodGet)
	}
	if s.replica != nil {
		s.handle("/api/replicate/status", maxSmallBody, s.handleReplicateStatus, http.MethodGet)
		s.handle("/api/query/partial", maxSmallBody, s.handlePartialQuery, http.MethodPost)
	}
}

// routesCoordinator registers the coordinator's reduced route set: it
// holds no local data, so the dashboard and store routes do not apply.
func (s *Server) routesCoordinator() {
	s.mux = http.NewServeMux()
	s.handle("/api/query", maxSmallBody, s.handleCoordQuery, http.MethodGet, http.MethodPost)
	s.handle("/api/presets", maxSmallBody, s.handlePresets, http.MethodGet)
	s.handle("/api/replicas", maxSmallBody, s.handleReplicas, http.MethodGet)
	s.handle("/api/health", maxSmallBody, s.handleHealth, http.MethodGet)
	s.handle("/api/ready", maxSmallBody, s.handleReady, http.MethodGet)
	s.handle("/metrics", maxSmallBody, obs.Handler(obs.Default), http.MethodGet)
}

// handle registers a route enforcing the allowed request methods (HEAD
// rides along with GET) and bounding the request body. The closure is
// also the observability middleware: it counts in-flight requests,
// times the whole chain into indice_http_request_seconds{route=...},
// accounts the status class, and recovers handler panics into a 500
// (logged with the stack) instead of killing the connection goroutine.
func (s *Server) handle(pattern string, maxBody int64, h http.HandlerFunc, methods ...string) {
	rm := metricsForRoute(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mHTTPInFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				mHTTPPanics.Inc()
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, pattern, rec, debug.Stack())
				if sw.code == 0 {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			mHTTPInFlight.Add(-1)
			rm.observe(sw.status(), time.Since(start))
		}()
		allowed := false
		for _, m := range methods {
			if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
				allowed = true
				break
			}
		}
		if !allowed {
			sw.Header().Set("Allow", strings.Join(methods, ", "))
			http.Error(sw, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, maxBody)
		}
		h(sw, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errNotPublished marks live mode before the first successful refresh.
var errNotPublished = errors.New("no analysis published yet: ingest data and refresh")

// state resolves the engine and analysis serving this request: the frozen
// pair in static mode, the last published pair in live mode.
func (s *Server) state() (*core.Engine, *core.Analysis, error) {
	if s.live == nil {
		return s.eng, s.an, nil
	}
	pub := s.live.Current()
	if pub == nil {
		return nil, nil, errNotPublished
	}
	return pub.Engine, pub.Analysis, nil
}

// serveState is state() plus the uniform 503 answer for unpublished live
// servers; handlers bail out when it returns nil.
func (s *Server) serveState(w http.ResponseWriter) (*core.Engine, *core.Analysis, bool) {
	eng, an, err := s.state()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return nil, nil, false
	}
	return eng, an, true
}

// handleIndex lists the navigable views.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>INDICE</title></head><body>")
	b.WriteString("<h1>INDICE</h1>")
	if eng, _, err := s.state(); err == nil {
		fmt.Fprintf(&b, "<p>%d certificates loaded.</p>", eng.Table().NumRows())
	} else {
		fmt.Fprintf(&b, "<p>%s</p>", html.EscapeString(err.Error()))
	}
	if s.live != nil {
		st := s.live.Store().Status()
		fmt.Fprintf(&b, "<p>live store: %d rows over %d shards (epoch %d).</p>",
			st.Rows, len(st.Shards), st.Epoch)
	}
	b.WriteString("<h2>Dashboards</h2><ul>")
	for _, st := range []query.Stakeholder{query.Citizen, query.PublicAdministration, query.EnergyScientist} {
		fmt.Fprintf(&b, `<li><a href="/dashboard/%s">%s</a></li>`, st, st)
	}
	b.WriteString("</ul><h2>Energy maps (drill-down)</h2><ul>")
	for _, l := range []geo.Level{geo.LevelCity, geo.LevelDistrict, geo.LevelNeighbourhood, geo.LevelUnit} {
		fmt.Fprintf(&b, `<li><a href="/map?level=%s&attr=%s">%s zoom</a></li>`, l, epc.AttrEPH, l)
	}
	b.WriteString("</ul><h2>APIs</h2><ul>")
	apis := []string{
		"/api/stats?attr=" + epc.AttrEPH,
		"/api/zones?level=district&attr=" + epc.AttrEPH,
		"/api/rules?k=10",
		"/api/clusters",
		"/api/query?preset=pa&by=" + epc.AttrDistrict,
		"/api/presets",
	}
	if s.live != nil {
		apis = append(apis, "/api/store")
	}
	for _, api := range apis {
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, api, html.EscapeString(api))
	}
	b.WriteString("</ul></body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleDashboard renders a full stakeholder dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	eng, an, ok := s.serveState(w)
	if !ok {
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/dashboard/")
	st, err := query.ParseStakeholder(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	page, err := eng.Dashboard(st, an)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// handleMap renders one energy map: /map?level=district&attr=eph. The
// SVG is wrapped in a small HTML page with drill links so the user can
// navigate zoom levels, the paper's core interaction.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	eng, _, ok := s.serveState(w)
	if !ok {
		return
	}
	levelName := r.URL.Query().Get("level")
	if levelName == "" {
		levelName = "city"
	}
	level, err := geo.ParseLevel(levelName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		attr = epc.AttrEPH
	}
	if typ, err := eng.Table().TypeOf(attr); err != nil || typ.String() != "float64" {
		http.Error(w, fmt.Sprintf("unknown numeric attribute %q", attr), http.StatusBadRequest)
		return
	}
	svg, kind, err := dashboard.RenderMap(eng.Table(), eng.Hierarchy(), dashboard.MapSpec{
		Title: fmt.Sprintf("Average %s — %s zoom", attr, level),
		Level: level,
		Attr:  attr,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("raw") == "1" {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, svg)
		return
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>INDICE map</title></head><body>")
	fmt.Fprintf(&b, "<p>%s map — drill: ", kind)
	for _, l := range []geo.Level{geo.LevelCity, geo.LevelDistrict, geo.LevelNeighbourhood, geo.LevelUnit} {
		if l == level {
			fmt.Fprintf(&b, "<b>%s</b> ", l)
		} else {
			fmt.Fprintf(&b, `<a href="/map?level=%s&attr=%s">%s</a> `, l, html.EscapeString(attr), l)
		}
	}
	b.WriteString("| attribute: ")
	for _, a := range []string{epc.AttrEPH, epc.AttrUOpaque, epc.AttrUWindows, epc.AttrETAH} {
		if a == attr {
			fmt.Fprintf(&b, "<b>%s</b> ", a)
		} else {
			fmt.Fprintf(&b, `<a href="/map?level=%s&attr=%s">%s</a> `, level, a, a)
		}
	}
	b.WriteString("</p>")
	b.WriteString(svg)
	b.WriteString("</body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// statsResponse is the JSON shape of /api/stats.
type statsResponse struct {
	Attr   string  `json:"attr"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng, _, ok := s.serveState(w)
	if !ok {
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		http.Error(w, "attr query parameter required", http.StatusBadRequest)
		return
	}
	vals, err := eng.Table().ValidFloats(attr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d, err := stats.Describe(vals)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, statsResponse{
		Attr: attr, Count: d.Count, Mean: d.Mean, StdDev: d.StdDev,
		Min: d.Min, Q1: d.Q1, Median: d.Median, Q3: d.Q3, Max: d.Max,
	})
}

// zoneResponse is the JSON shape of one /api/zones element.
type zoneResponse struct {
	ID    string  `json:"id"`
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
}

func (s *Server) handleZones(w http.ResponseWriter, r *http.Request) {
	eng, _, ok := s.serveState(w)
	if !ok {
		return
	}
	levelName := r.URL.Query().Get("level")
	if levelName == "" {
		levelName = "district"
	}
	level, err := geo.ParseLevel(levelName)
	if err != nil || level == geo.LevelUnit {
		http.Error(w, "level must be city, district or neighbourhood", http.StatusBadRequest)
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		attr = epc.AttrEPH
	}
	zs, err := dashboard.AggregateByZone(eng.Table(), eng.Hierarchy(), level, attr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make([]zoneResponse, 0, len(zs))
	for _, z := range zs {
		mean := z.Mean
		if math.IsNaN(mean) {
			// Zones without data serialize with mean 0 and count 0; JSON
			// cannot carry NaN.
			mean = 0
		}
		out = append(out, zoneResponse{ID: z.Zone.ID, Name: z.Zone.Name, Count: z.Count, Mean: mean})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

// ruleResponse is the JSON shape of one /api/rules element.
type ruleResponse struct {
	Antecedent string  `json:"antecedent"`
	Consequent string  `json:"consequent"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	_, an, ok := s.serveState(w)
	if !ok {
		return
	}
	if an == nil {
		http.Error(w, "analysis not available", http.StatusNotFound)
		return
	}
	k := 20
	if raw := r.URL.Query().Get("k"); raw != "" {
		if _, err := fmt.Sscanf(raw, "%d", &k); err != nil || k < 1 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
	}
	top := assoc.TopK(an.Rules, assoc.ByLift, k)
	out := make([]ruleResponse, 0, len(top))
	for _, rule := range top {
		out = append(out, ruleResponse{
			Antecedent: rule.Antecedent.String(),
			Consequent: rule.Consequent.String(),
			Support:    rule.Support,
			Confidence: rule.Confidence,
			Lift:       rule.Lift,
		})
	}
	writeJSON(w, out)
}

// clusterResponse is the JSON shape of one /api/clusters element.
type clusterResponse struct {
	Cluster      int     `json:"cluster"`
	Size         int     `json:"size"`
	MeanResponse float64 `json:"mean_response"`
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	_, an, ok := s.serveState(w)
	if !ok {
		return
	}
	if an == nil || an.Clustering == nil {
		http.Error(w, "analysis not available", http.StatusNotFound)
		return
	}
	out := make([]clusterResponse, an.ChosenK)
	for c := 0; c < an.ChosenK; c++ {
		mean := an.ClusterResponseMeans[c]
		if math.IsNaN(mean) {
			mean = 0
		}
		out[c] = clusterResponse{
			Cluster:      c,
			Size:         an.Clustering.Sizes[c],
			MeanResponse: mean,
		}
	}
	writeJSON(w, out)
}

// ingestResponse is the JSON shape of POST /api/ingest.
type ingestResponse struct {
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
	Issues   []string `json:"issues,omitempty"`
	Rows     int      `json:"rows"`
}

// handleIngest appends certificates to the live store. The body format
// follows the Content-Type: application/json carries one record object or
// an array of them, text/csv a typed-CSV batch, application/octet-stream
// a binary columnar batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "ingestion requires live mode", http.StatusNotFound)
		return
	}
	if s.replica != nil {
		http.Error(w, "replica is read-only: ingest at the leader", http.StatusForbidden)
		return
	}
	st := s.live.Store()
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	var (
		res store.IngestResult
		err error
	)
	switch ct {
	case "application/json", "":
		recs, derr := decodeRecords(r.Body)
		if derr != nil {
			http.Error(w, fmt.Sprintf("bad JSON body: %v", derr), badBodyStatus(derr))
			return
		}
		res, err = st.AppendRecords(recs)
	case "text/csv":
		res, err = st.AppendCSV(r.Body)
	case "application/octet-stream":
		res, err = st.AppendBinary(r.Body)
	default:
		http.Error(w, fmt.Sprintf("unsupported Content-Type %q (want application/json, text/csv or application/octet-stream)", ct),
			http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), badBodyStatus(err))
		return
	}
	writeJSON(w, ingestResponse{
		Accepted: res.Accepted,
		Rejected: res.Rejected,
		Issues:   res.Issues,
		Rows:     st.Rows(),
	})
}

// decodeRecords parses an ingest body holding either one record object or
// an array of records, streaming straight off the (size-limited) body.
// Numbers decode as json.Number so values keep full precision until the
// store coerces them; trailing data after the JSON value is an error (a
// concatenated or newline-delimited stream would otherwise be silently
// truncated to its first document).
func decodeRecords(r io.Reader) ([]store.Record, error) {
	br := bufio.NewReader(r)
	var first byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		first = b
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		break
	}
	dec := json.NewDecoder(br)
	dec.UseNumber()
	var recs []store.Record
	if first == '[' {
		if err := dec.Decode(&recs); err != nil {
			return nil, err
		}
	} else {
		var one store.Record
		if err := dec.Decode(&one); err != nil {
			return nil, err
		}
		recs = []store.Record{one}
	}
	if dec.More() {
		return nil, errors.New("trailing data after JSON value (send one object or one array per request)")
	}
	return recs, nil
}

// badBodyStatus maps body-read failures to 413 when the MaxBytesReader
// tripped and 400 otherwise.
func badBodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// storeResponse is the JSON shape of GET /api/store.
type storeResponse struct {
	store.Status
	Published  *publishedInfo `json:"published,omitempty"`
	Refreshing bool           `json:"refreshing"`
	Refreshes  uint64         `json:"refreshes"`
	// FullRefreshes and IncrementalRefreshes split Refreshes by pipeline:
	// the full Preprocess→Analyze runs versus the delta-proportional fast
	// path (see the published block for the latest delta's sizes).
	FullRefreshes        uint64 `json:"full_refreshes"`
	IncrementalRefreshes uint64 `json:"incremental_refreshes"`
	LastError            string `json:"last_error,omitempty"`
	// LastIncrementalError reports an unexpected fast-path failure whose
	// refresh still completed via the full pipeline.
	LastIncrementalError string `json:"last_incremental_error,omitempty"`
	// LiveStats (?attr=) and LiveCounts (?by=) read the store's
	// incrementally maintained summaries: the up-to-the-last-append view,
	// ahead of the published analysis the other APIs serve.
	LiveStats  *liveStatsInfo `json:"live_stats,omitempty"`
	LiveCounts map[string]int `json:"live_counts,omitempty"`
	QueryCache *cacheInfo     `json:"query_cache,omitempty"`
	// Durability reports the persistence layer (WAL position, checkpoint
	// history, segment residency) when the store runs on a data directory.
	Durability *store.DurabilityStatus `json:"durability,omitempty"`
}

// cacheInfo summarizes the /api/query result cache.
type cacheInfo struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

type liveStatsInfo struct {
	Attr   string  `json:"attr"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

type publishedInfo struct {
	Epoch       uint64  `json:"epoch"`
	Rows        int     `json:"rows"`
	ServingRows int     `json:"serving_rows"`
	RefreshedAt string  `json:"refreshed_at"`
	TookSeconds float64 `json:"took_seconds"`
	// Incremental marks a state published by the delta-proportional fast
	// path; delta_rows/reused_rows then size the newly materialized
	// versus zero-copy-reused data, and drift is the measured
	// distribution drift since the last full sweep.
	Incremental bool    `json:"incremental"`
	DeltaRows   int     `json:"delta_rows,omitempty"`
	ReusedRows  int     `json:"reused_rows,omitempty"`
	Drift       float64 `json:"drift,omitempty"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "no live store (static server)", http.StatusNotFound)
		return
	}
	st := s.live.Store()
	resp := storeResponse{
		Status:               st.Status(),
		Refreshing:           s.live.Refreshing(),
		Refreshes:            s.live.Refreshes(),
		FullRefreshes:        s.live.FullRefreshes(),
		IncrementalRefreshes: s.live.IncrementalRefreshes(),
	}
	if attr := r.URL.Query().Get("attr"); attr != "" {
		rs, ok := st.RunningStats(attr)
		if !ok {
			http.Error(w, fmt.Sprintf("attribute %q has no tracked statistics", attr), http.StatusBadRequest)
			return
		}
		resp.LiveStats = &liveStatsInfo{
			Attr: attr, Count: rs.Count, Mean: rs.Mean, StdDev: rs.StdDev(),
			Min: rs.Min, Max: rs.Max,
		}
	}
	if by := r.URL.Query().Get("by"); by != "" {
		counts, ok := st.CountBy(by)
		if !ok {
			http.Error(w, fmt.Sprintf("attribute %q is not indexed", by), http.StatusBadRequest)
			return
		}
		resp.LiveCounts = counts
	}
	if msg, _ := s.live.LastError(); msg != "" {
		resp.LastError = msg
	}
	resp.LastIncrementalError = s.live.LastIncrementalError()
	if s.cache != nil {
		hits, misses, size := s.cache.stats()
		resp.QueryCache = &cacheInfo{Hits: hits, Misses: misses, Size: size}
	}
	if ds := st.DurabilityStatus(); ds.Enabled {
		resp.Durability = &ds
	}
	if pub := s.live.Current(); pub != nil {
		resp.Published = &publishedInfo{
			Epoch:       pub.Epoch,
			Rows:        pub.Rows,
			ServingRows: pub.Engine.Table().NumRows(),
			RefreshedAt: pub.RefreshedAt.UTC().Format("2006-01-02T15:04:05Z"),
			TookSeconds: pub.Took.Seconds(),
			Incremental: pub.Incremental,
			DeltaRows:   pub.DeltaRows,
			ReusedRows:  pub.ReusedRows,
			Drift:       pub.Drift,
		}
	}
	writeJSON(w, resp)
}

// refreshResponse is the JSON shape of POST /api/refresh.
type refreshResponse struct {
	Epoch       uint64  `json:"epoch"`
	Rows        int     `json:"rows"`
	ServingRows int     `json:"serving_rows"`
	TookSeconds float64 `json:"took_seconds"`
}

// handleRefresh synchronously re-runs the pipeline over a fresh snapshot
// and publishes the result.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "refresh requires live mode", http.StatusNotFound)
		return
	}
	pub, err := s.live.Refresh()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrStoreTooSmall) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, refreshResponse{
		Epoch:       pub.Epoch,
		Rows:        pub.Rows,
		ServingRows: pub.Engine.Table().NumRows(),
		TookSeconds: pub.Took.Seconds(),
	})
}

// handleCheckpoint forces a checkpoint of the durable store: tails are
// sealed and persisted, the manifest commits and the covered WAL files
// are pruned. 409 for in-memory stores (no -data-dir).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "checkpoint requires live mode", http.StatusNotFound)
		return
	}
	if !s.live.Store().DurabilityStatus().Enabled {
		http.Error(w, "store has no data directory (start with -data-dir)", http.StatusConflict)
		return
	}
	res, err := s.live.Store().Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, res)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
