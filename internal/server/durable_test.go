package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/store"
	"indice/internal/synth"
)

// durableWorld builds a live server over a durable store on dir.
func durableWorld(t *testing.T, dir string, city *synth.City) (*httptest.Server, *store.Store) {
	t.Helper()
	scfg := store.DefaultConfig()
	scfg.Shards = 2
	st, err := store.Open(scfg, store.Durability{Dir: dir, MaxWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = 4
	live, err := core.NewLive(st, city.Hierarchy, core.LiveConfig{Analysis: acfg, MinRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLive(live)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	return ts, st
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServerDurableRestart drives the HTTP surface across a simulated
// crash: ingest over /api/ingest, publish, record /api/query and the
// store shape, kill the process-equivalent (no checkpoint, no graceful
// close), reboot over the same directory and require the recovered
// /api/query response bitwise-identical and the store shape unchanged.
func TestServerDurableRestart(t *testing.T) {
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 40, 10
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = 600
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ts, st := durableWorld(t, dir, city)

	// The durability block is live from the start.
	code, body := getBody(t, ts.URL+"/api/store")
	if code != http.StatusOK {
		t.Fatalf("/api/store = %d: %s", code, body)
	}
	var sr struct {
		Durability *store.DurabilityStatus `json:"durability"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Durability == nil || !sr.Durability.Enabled || sr.Durability.Fsync != "always" {
		t.Fatalf("durability block = %+v", sr.Durability)
	}

	// Ingest the corpus over HTTP, publish, checkpoint part of it so the
	// restart exercises both checkpoint adoption and WAL replay.
	chunks := csvChunks(t, ds.Table, 200)
	for i, chunk := range chunks {
		if code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunk); code != http.StatusOK {
			t.Fatalf("ingest chunk %d = %d: %s", i, code, body)
		}
		if i == 0 {
			if code, body := post(t, ts.URL+"/api/checkpoint", "application/json", nil); code != http.StatusOK {
				t.Fatalf("/api/checkpoint = %d: %s", code, body)
			}
		}
	}
	if code, body := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
		t.Fatalf("/api/refresh = %d: %s", code, body)
	}
	queryURL := "/api/query?attrs=" + epc.AttrEPH + "&limit=5&by=" + epc.AttrDistrict
	code, wantQuery := getBody(t, ts.URL+queryURL)
	if code != http.StatusOK {
		t.Fatalf("/api/query = %d: %s", code, wantQuery)
	}
	wantStatus := st.Status()

	// Kill: drop the server without checkpointing or closing the store.
	// Everything acked over HTTP must survive on disk alone.
	ts.Close()

	ts2, st2 := durableWorld(t, dir, city)
	defer ts2.Close()
	defer st2.Close()
	rec := st2.RecoveryInfo()
	if rec.CheckpointRows == 0 || rec.ReplayedRows == 0 {
		t.Fatalf("restart recovered nothing: %+v", rec)
	}
	gotStatus := st2.Status()
	if gotStatus.Rows != wantStatus.Rows || gotStatus.Generation != wantStatus.Generation ||
		gotStatus.Accepted != wantStatus.Accepted || gotStatus.Rejected != wantStatus.Rejected {
		t.Fatalf("restarted store shape = %+v, want %+v", gotStatus, wantStatus)
	}
	for i := range wantStatus.Shards {
		if gotStatus.Shards[i].Rows != wantStatus.Shards[i].Rows {
			t.Fatalf("shard %d rows = %d, want %d", i, gotStatus.Shards[i].Rows, wantStatus.Shards[i].Rows)
		}
	}
	if code, body := post(t, ts2.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
		t.Fatalf("post-restart /api/refresh = %d: %s", code, body)
	}
	code, gotQuery := getBody(t, ts2.URL+queryURL)
	if code != http.StatusOK {
		t.Fatalf("post-restart /api/query = %d: %s", code, gotQuery)
	}
	if string(gotQuery) != string(wantQuery) {
		t.Fatalf("post-restart query differs:\npre:  %s\npost: %s", wantQuery, gotQuery)
	}
}

// TestCheckpointEndpointRequiresDataDir pins the 409 for in-memory mode.
func TestCheckpointEndpointRequiresDataDir(t *testing.T) {
	ts, _, _ := liveServer(t, 200)
	if code, body := post(t, ts.URL+"/api/checkpoint", "application/json", nil); code != http.StatusConflict {
		t.Fatalf("/api/checkpoint on in-memory store = %d: %s", code, body)
	}
}
