package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// classValue reads one status-class counter of a route. The registry is
// process-global, so tests assert deltas, never absolute values.
func classValue(route, class string) uint64 {
	rm := metricsForRoute(route)
	for i, c := range statusClasses {
		if c == class {
			return rm.classes[i].Value()
		}
	}
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, false)
	// Touch a data route first so request series carry samples.
	if code, _ := get(t, ts.URL+"/api/stats?attr="+"eph"); code != http.StatusOK {
		t.Log("warm-up route answered non-200 (fine for the exposition check)")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// One family per instrumented layer, plus runtime stats: the
	// exposition must span store, refresh, query, server and process.
	for _, family := range []string{
		"# TYPE indice_store_ingest_rows_accepted_total counter",
		"# TYPE indice_refresh_total counter",
		"# TYPE indice_query_plans_total counter",
		"# TYPE indice_http_requests_total counter",
		"# TYPE indice_http_request_seconds histogram",
		"# TYPE indice_http_in_flight_requests gauge",
		"# TYPE indice_query_cache_hits_total counter",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	if !strings.Contains(text, `route="/api/stats"`) {
		t.Error("exposition missing per-route series for /api/stats")
	}
}

func TestMiddlewareStatusClassAccounting(t *testing.T) {
	ts := testServer(t, false)
	url := ts.URL + "/api/stats"

	ok2xx := classValue("/api/stats", "2xx")
	bad4xx := classValue("/api/stats", "4xx")

	if code, _ := get(t, url+"?attr=eph"); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if code, _ := get(t, url); code != http.StatusBadRequest {
		t.Fatalf("missing attr status = %d", code)
	}
	// Method enforcement runs inside the middleware, so a 405 must be
	// accounted like any handler-produced status.
	resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}

	if got := classValue("/api/stats", "2xx") - ok2xx; got != 1 {
		t.Errorf("2xx delta = %d, want 1", got)
	}
	if got := classValue("/api/stats", "4xx") - bad4xx; got != 2 {
		t.Errorf("4xx delta = %d, want 2 (400 + 405)", got)
	}
	if v := mHTTPInFlight.Value(); v != 0 {
		t.Errorf("in-flight gauge = %v after requests drained, want 0", v)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	// A bare Server with one panicking route exercises the middleware in
	// isolation; the stack-trace log is silenced for the test run.
	old := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(old)

	s := &Server{mux: http.NewServeMux()}
	s.handle("/boom", maxSmallBody, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}, http.MethodGet)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	panics := mHTTPPanics.Value()
	boom5xx := classValue("/boom", "5xx")

	code, body := get(t, ts.URL+"/boom")
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", code)
	}
	if !strings.Contains(body, "internal server error") {
		t.Fatalf("body = %q", body)
	}
	if got := mHTTPPanics.Value() - panics; got != 1 {
		t.Errorf("panic counter delta = %d, want 1", got)
	}
	if got := classValue("/boom", "5xx") - boom5xx; got != 1 {
		t.Errorf("5xx delta = %d, want 1", got)
	}

	// The connection survives: the same client can keep requesting.
	if code, _ := get(t, ts.URL+"/boom"); code != http.StatusInternalServerError {
		t.Fatalf("second request status = %d, want 500", code)
	}
}

func TestHealthEndpointStatic(t *testing.T) {
	ts := testServer(t, false)
	code, body := get(t, ts.URL+"/api/health")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var h struct {
		Status    string `json:"status"`
		Mode      string `json:"mode"`
		Rows      int    `json:"rows"`
		Published bool   `json:"published"`
		HTTP      struct {
			Requests uint64  `json:"requests"`
			InFlight float64 `json:"in_flight"`
		} `json:"http"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("bad health JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Mode != "static" || !h.Published {
		t.Errorf("health = %+v", h)
	}
	if h.Rows == 0 {
		t.Error("health reports zero rows for a seeded static server")
	}
	if h.HTTP.Requests == 0 {
		t.Error("health reports zero requests after at least one was served")
	}
}

func TestHealthEndpointLiveStarting(t *testing.T) {
	ts, live, _ := liveServer(t, 10)
	if live.Current() != nil {
		t.Fatal("live server unexpectedly published")
	}
	code, body := get(t, ts.URL+"/api/health")
	if code != http.StatusOK {
		t.Fatalf("status = %d (health must stay 200 while starting)", code)
	}
	var h struct {
		Status    string `json:"status"`
		Mode      string `json:"mode"`
		Published bool   `json:"published"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("bad health JSON: %v\n%s", err, body)
	}
	if h.Status != "starting" || h.Mode != "live" || h.Published {
		t.Errorf("health = %+v, want starting/live/unpublished", h)
	}
}

func TestCacheStatsReadThroughRegistry(t *testing.T) {
	ts := testServer(t, false)
	hits, misses := mCacheHits.Value(), mCacheMisses.Value()
	url := ts.URL + "/api/query?q=eph+%3E%3D+50"
	if code, _ := get(t, url); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if code, _ := get(t, url); code != http.StatusOK {
		t.Fatalf("repeat query status = %d", code)
	}
	if got := mCacheMisses.Value() - misses; got != 1 {
		t.Errorf("cache miss delta = %d, want 1", got)
	}
	if got := mCacheHits.Value() - hits; got != 1 {
		t.Errorf("cache hit delta = %d, want 1", got)
	}
}
