package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"indice/internal/core"
	"indice/internal/scaleout"
	"indice/internal/store"
	"indice/internal/synth"
)

// testCluster is an in-process leader + N replicas + coordinator, all
// real Servers over httptest listeners — the full scale-out path minus
// process boundaries (covered by the cmd e2e test).
type testCluster struct {
	leaderStore *store.Store
	leaderLive  *core.Live
	leader      *httptest.Server
	replicas    []*scaleout.Replica
	replicaLive []*core.Live
	replicaSrvs []*httptest.Server
	coord       *scaleout.Coordinator
	coordSrv    *httptest.Server
}

func newTestCluster(t *testing.T, nReplicas, certificates int) *testCluster {
	t.Helper()
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 40, 10
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = certificates
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}

	scfg := store.DefaultConfig()
	scfg.Shards = 4
	scfg.SegmentRows = 512
	tc := &testCluster{}
	tc.leaderStore, err = store.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.leaderLive, err = core.NewLive(tc.leaderStore, city.Hierarchy, core.LiveConfig{MinRows: 100, SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv, err := NewLiveCluster(tc.leaderLive, ClusterConfig{Leader: scaleout.NewLeader(tc.leaderStore)})
	if err != nil {
		t.Fatal(err)
	}
	tc.leader = httptest.NewServer(leaderSrv)
	t.Cleanup(tc.leader.Close)

	if _, err := tc.leaderStore.AppendTable(ds.Table); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.leaderLive.Refresh(); err != nil {
		t.Fatal(err)
	}

	urls := make([]string, 0, nReplicas)
	for i := 0; i < nReplicas; i++ {
		rstore, err := store.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		rlive, err := core.NewLive(rstore, city.Hierarchy, core.LiveConfig{MinRows: 100, SkipAnalysis: true})
		if err != nil {
			t.Fatal(err)
		}
		repl := scaleout.NewReplica(rstore, tc.leader.URL, tc.leader.Client(), 10*time.Millisecond)
		rsrv, err := NewLiveCluster(rlive, ClusterConfig{Replica: repl})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rsrv)
		t.Cleanup(ts.Close)
		tc.replicas = append(tc.replicas, repl)
		tc.replicaLive = append(tc.replicaLive, rlive)
		tc.replicaSrvs = append(tc.replicaSrvs, ts)
		urls = append(urls, ts.URL)
	}

	tc.coord, err = scaleout.NewCoordinator(scaleout.CoordinatorConfig{
		Replicas: urls, PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.coord.Close)
	coordSrv, err := NewCoordinator(tc.coord)
	if err != nil {
		t.Fatal(err)
	}
	tc.coordSrv = httptest.NewServer(coordSrv)
	t.Cleanup(tc.coordSrv.Close)
	return tc
}

// syncAll pulls every replica current and refreshes the coordinator's
// view, so queries are deterministic.
func (tc *testCluster) syncAll(t *testing.T) {
	t.Helper()
	for i, r := range tc.replicas {
		if err := r.SyncOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		// SyncOnce kicked an async refresh; publish synchronously so the
		// replica's readiness is deterministic for the assertions.
		if _, err := tc.replicaLive[i].Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	tc.coord.PollStatus(context.Background())
}

func relCloseTo(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestCoordinatorMatchesSingleNode is the server-level equivalence
// check: the scatter-gather /api/query answer over 1 and 2 replicas
// must match the single-node answer from the leader within 1e-9 on
// every merged statistic, group for group, row for row.
func TestCoordinatorMatchesSingleNode(t *testing.T) {
	for _, nReplicas := range []int{1, 2} {
		tc := newTestCluster(t, nReplicas, 1200)
		tc.syncAll(t)

		for _, q := range []string{
			"/api/query?attrs=eph,u_windows&by=energy_class&limit=5",
			"/api/query?attrs=eph&q=eph+%3E%3D+100",
			"/api/query?preset=pa&by=district",
		} {
			_, single, body := getQuery(t, tc.leader.URL+q)
			if single == nil {
				t.Fatalf("replicas=%d leader %s: %s", nReplicas, q, body)
			}
			_, merged, body := getQuery(t, tc.coordSrv.URL+q)
			if merged == nil {
				t.Fatalf("replicas=%d coordinator %s: %s", nReplicas, q, body)
			}

			if merged.Matched != single.Matched || merged.StoreRows != single.StoreRows {
				t.Fatalf("replicas=%d %s: matched %d/%d, want %d/%d",
					nReplicas, q, merged.Matched, merged.StoreRows, single.Matched, single.StoreRows)
			}
			if merged.Cluster == nil || merged.Cluster.Replicas != nReplicas {
				t.Fatalf("replicas=%d %s: cluster block %+v", nReplicas, q, merged.Cluster)
			}
			if len(merged.Stats) != len(single.Stats) {
				t.Fatalf("replicas=%d %s: %d stats, want %d", nReplicas, q, len(merged.Stats), len(single.Stats))
			}
			statsShaped := !strings.Contains(q, "limit=")
			for i, m := range merged.Stats {
				s := single.Stats[i]
				if m.Attr != s.Attr || m.Count != s.Count ||
					!relCloseTo(m.Mean, s.Mean) || !relCloseTo(m.StdDev, s.StdDev) ||
					m.Min != s.Min || m.Max != s.Max {
					t.Fatalf("replicas=%d %s: stats[%d] = %+v, want %+v", nReplicas, q, i, m, s)
				}
				// Stats-shaped queries take the sketch path on both sides;
				// sketch merges are exact, so coordinator quartiles equal
				// the single node's bitwise — the old "quartiles read 0 on
				// merged responses" caveat is gone. (Row-page queries
				// compare a sketch against the leader's exact sort, so only
				// the stats-shaped ones pin equality.)
				if statsShaped {
					if m.Count > 0 && m.Median == 0 && m.Q1 == 0 && m.Q3 == 0 && s.Median != 0 {
						t.Fatalf("replicas=%d %s: merged quartiles read 0: %+v", nReplicas, q, m)
					}
					if m.Q1 != s.Q1 || m.Median != s.Median || m.Q3 != s.Q3 {
						t.Fatalf("replicas=%d %s: stats[%d] quartiles [%v %v %v], want [%v %v %v]",
							nReplicas, q, i, m.Q1, m.Median, m.Q3, s.Q1, s.Median, s.Q3)
					}
				}
			}
			if len(merged.Groups) != len(single.Groups) {
				t.Fatalf("replicas=%d %s: %d groups, want %d", nReplicas, q, len(merged.Groups), len(single.Groups))
			}
			for i, g := range merged.Groups {
				w := single.Groups[i]
				if g.Value != w.Value || g.Count != w.Count {
					t.Fatalf("replicas=%d %s: group %q/%d, want %q/%d", nReplicas, q, g.Value, g.Count, w.Value, w.Count)
				}
				for attr, mean := range w.Means {
					if !relCloseTo(g.Means[attr], mean) {
						t.Fatalf("replicas=%d %s: group %q mean[%s] = %v, want %v",
							nReplicas, q, g.Value, attr, g.Means[attr], mean)
					}
				}
				if statsShaped {
					for attr, wq := range w.Quartiles {
						if g.Quartiles[attr] != wq {
							t.Fatalf("replicas=%d %s: group %q quartiles[%s] = %+v, want %+v",
								nReplicas, q, g.Value, attr, g.Quartiles[attr], wq)
						}
					}
				}
			}
			if len(merged.Rows) != len(single.Rows) {
				t.Fatalf("replicas=%d %s: %d rows, want %d", nReplicas, q, len(merged.Rows), len(single.Rows))
			}
			for i := range merged.Rows {
				if merged.Rows[i]["certificate_id"] != single.Rows[i]["certificate_id"] {
					t.Fatalf("replicas=%d %s: row %d = %v, want %v",
						nReplicas, q, i, merged.Rows[i]["certificate_id"], single.Rows[i]["certificate_id"])
				}
			}
		}

		// The coordinator has its own epoch-partitioned cache. A query
		// shape not issued above must miss, then hit.
		q := "/api/query?attrs=eph&q=eph+%3E%3D+100&limit=3"
		if _, first, _ := getQuery(t, tc.coordSrv.URL+q); first.Cached {
			t.Fatal("first coordinator query claims to be cached")
		}
		if _, second, _ := getQuery(t, tc.coordSrv.URL+q); !second.Cached {
			t.Fatal("repeated coordinator query missed the cache")
		}
	}
}

// TestReadyEndpoints covers the readiness gate on every role, as
// distinct from the always-200 /api/health report.
func TestReadyEndpoints(t *testing.T) {
	tc := newTestCluster(t, 1, 400)

	// Leader published an analysis in newTestCluster: ready.
	code, body := get(t, tc.leader.URL+"/api/ready")
	if code != http.StatusOK {
		t.Fatalf("leader /api/ready = %d: %s", code, body)
	}
	var ready struct {
		Ready bool   `json:"ready"`
		Mode  string `json:"mode"`
	}
	if err := json.Unmarshal([]byte(body), &ready); err != nil || !ready.Ready || ready.Mode != "leader" {
		t.Fatalf("leader ready body: %s (%v)", body, err)
	}

	// Replica: 503 before its first sync, 200 after — while /api/health
	// answers 200 throughout.
	if code, _ := get(t, tc.replicaSrvs[0].URL+"/api/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("unsynced replica /api/ready = %d, want 503", code)
	}
	if code, _ := get(t, tc.replicaSrvs[0].URL+"/api/health"); code != http.StatusOK {
		t.Fatalf("unsynced replica /api/health = %d, want 200", code)
	}
	// Coordinator: 503 while no replica can serve.
	tc.coord.PollStatus(context.Background())
	if code, _ := get(t, tc.coordSrv.URL+"/api/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("coordinator /api/ready with no synced replica = %d, want 503", code)
	}

	tc.syncAll(t)
	code, body = get(t, tc.replicaSrvs[0].URL+"/api/ready")
	if code != http.StatusOK {
		t.Fatalf("synced replica /api/ready = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ready); err != nil || ready.Mode != "replica" {
		t.Fatalf("replica ready body: %s (%v)", body, err)
	}
	if code, _ := get(t, tc.coordSrv.URL+"/api/ready"); code != http.StatusOK {
		t.Fatalf("coordinator /api/ready after sync = %d, want 200", code)
	}
}

func TestReplicaRejectsIngest(t *testing.T) {
	tc := newTestCluster(t, 1, 400)
	tc.syncAll(t)
	code, body := post(t, tc.replicaSrvs[0].URL+"/api/ingest", "text/csv", []byte("x"))
	if code != http.StatusForbidden {
		t.Fatalf("replica ingest = %d: %s", code, body)
	}
}

// TestCoordinatorShutdownDrainsInflightFanout is the shutdown-ordering
// regression test: with a slow replica leg in flight, http.Server
// drains the fan-out to completion BEFORE the coordinator's replica
// clients are closed (srv.Shutdown, then coord.Close — the order
// indice-server's main uses). The in-flight query must answer 200, not
// be severed by its own server's teardown.
func TestCoordinatorShutdownDrainsInflightFanout(t *testing.T) {
	const legDelay = 400 * time.Millisecond
	// A hand-rolled slow replica: one shard, epoch 5, and a partial
	// handler that answers correctly but only after legDelay.
	mux := http.NewServeMux()
	mux.HandleFunc("/api/replicate/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(scaleout.ReplicaStatus{AppliedEpoch: 5, MinEpoch: 1, Shards: 1, Rows: 10})
	})
	mux.HandleFunc("/api/query/partial", func(w http.ResponseWriter, r *http.Request) {
		var spec scaleout.QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		select {
		case <-time.After(legDelay):
		case <-r.Context().Done():
			return
		}
		json.NewEncoder(w).Encode(&scaleout.Partial{
			Epoch: spec.Epoch, StoreRows: 10, Matched: 10,
			Attrs: map[string]scaleout.AttrPartial{"eph": {Count: 10, Mean: 120, M2: 5, Min: 90, Max: 150}},
		})
	})
	replica := httptest.NewServer(mux)
	defer replica.Close()

	coord, err := scaleout.NewCoordinator(scaleout.CoordinatorConfig{
		Replicas:     []string{replica.URL},
		PollInterval: 10 * time.Millisecond,
		HedgeAfter:   10 * time.Second, // no hedging noise
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.PollStatus(context.Background())
	handler, err := NewCoordinator(coord)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Launch the query, give it time to reach the replica, then shut
	// the server down while the leg is still sleeping.
	type result struct {
		code    int
		resp    queryResponse
		elapsed time.Duration
		err     error
	}
	resCh := make(chan result, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		resp, err := http.Get(base + "/api/query?attrs=eph")
		r := result{elapsed: time.Since(start), err: err}
		if err == nil {
			r.code = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&r.resp)
			resp.Body.Close()
		}
		resCh <- r
	}()
	time.Sleep(legDelay / 4)

	shutStart := time.Now()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	shutTook := time.Since(shutStart)
	coord.Close() // postDrain: only after the fan-out drained

	wg.Wait()
	r := <-resCh
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight query during shutdown: code %d, err %v", r.code, r.err)
	}
	if r.resp.Matched != 10 || len(r.resp.Stats) != 1 || r.resp.Stats[0].Count != 10 {
		t.Fatalf("drained query answered %+v", r.resp)
	}
	// Shutdown must have waited for the slow leg rather than returning
	// while it was still in flight.
	if shutTook < legDelay/2 {
		t.Fatalf("Shutdown returned in %v, before the %v leg finished", shutTook, legDelay)
	}
	// And the listener is really closed afterwards.
	if _, err := http.Get(base + "/api/ready"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestReplicaLagGate covers the ReadyMaxLag branch: a replica that has
// synced but trails the leader by more epochs than allowed answers 503.
func TestReplicaLagGate(t *testing.T) {
	tc := newTestCluster(t, 1, 400)
	tc.syncAll(t)

	// Create lag: land more epochs at the leader, then let the replica
	// contact the leader WITHOUT applying (simulated by a direct status
	// read after manual appends — the real pull would apply, so instead
	// assert through the handler with readyMaxLag on a fresh server).
	repl := tc.replicas[0]
	rsrvLagged, err := NewLiveCluster(mustLive(t), ClusterConfig{Replica: repl, ReadyMaxLag: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rsrvLagged)
	defer ts.Close()
	// Lag 0 <= huge ReadyMaxLag: ready... but this server's live loop
	// never published, so the live gate must still hold it at 503.
	if code, _ := get(t, ts.URL+"/api/ready"); code != http.StatusServiceUnavailable {
		t.Fatal("unpublished live loop reported ready")
	}
}

// mustLive builds a minimal live loop over an empty store.
func mustLive(t *testing.T) *core.Live {
	t.Helper()
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 5, 4
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	live, err := core.NewLive(st, city.Hierarchy, core.LiveConfig{MinRows: 100, SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	return live
}

// TestPartialQueryValidation drives /api/query/partial directly through
// every rejection branch and both service branches (the pushdown
// stats-shaped leg and the row-shaped leg), plus the info endpoints the
// coordinator path never exercises.
func TestPartialQueryValidation(t *testing.T) {
	tc := newTestCluster(t, 1, 600)
	tc.syncAll(t)
	replica := tc.replicaSrvs[0]
	epoch := tc.replicas[0].Status().AppliedEpoch

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := replica.Client().Post(replica.URL+"/api/query/partial", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	for _, tt := range []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"missing epoch", fmt.Sprintf(`{"epoch": %d, "shard_from": 0, "shard_to": 4}`, epoch+99), http.StatusPreconditionFailed},
		{"bad shard range", fmt.Sprintf(`{"epoch": %d, "shard_from": 3, "shard_to": 1}`, epoch), http.StatusBadRequest},
		{"unparseable query", fmt.Sprintf(`{"epoch": %d, "shard_from": 0, "shard_to": 4, "q": "eph >"}`, epoch), http.StatusBadRequest},
		{"unknown agg attr", fmt.Sprintf(`{"epoch": %d, "shard_from": 0, "shard_to": 4, "attrs": ["nope"]}`, epoch), http.StatusBadRequest},
	} {
		if code, body := post(tt.body); code != tt.status {
			t.Fatalf("%s: status %d (%s), want %d", tt.name, code, body, tt.status)
		}
	}

	// Stats-shaped leg (rows_limit absent): served by the pushdown, no
	// rows, populated sketches.
	code, body := post(fmt.Sprintf(`{"epoch": %d, "shard_from": 0, "shard_to": 4, "attrs": ["eph"], "by": "energy_class"}`, epoch))
	if code != http.StatusOK {
		t.Fatalf("stats leg: %d %s", code, body)
	}
	var p scaleout.Partial
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if p.Rows != nil || len(p.Groups) == 0 || p.Matched == 0 {
		t.Fatalf("stats leg: %+v", p)
	}
	if sk := p.Attrs["eph"].Sketch; sk == nil || sk.Count() == 0 {
		t.Fatalf("stats leg carried no sketch: %+v", p.Attrs["eph"])
	}

	// Row-shaped leg: materializes and pages.
	code, body = post(fmt.Sprintf(`{"epoch": %d, "shard_from": 0, "shard_to": 4, "attrs": ["eph"], "rows_limit": 5}`, epoch))
	if code != http.StatusOK {
		t.Fatalf("row leg: %d %s", code, body)
	}
	p = scaleout.Partial{}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 5 || p.Matched == 0 {
		t.Fatalf("row leg: %d rows, matched %d", len(p.Rows), p.Matched)
	}

	// The leader's replication info and the coordinator's replica view.
	resp, err := tc.leader.Client().Get(tc.leader.URL + "/api/replicate/info")
	if err != nil {
		t.Fatal(err)
	}
	var info scaleout.LeaderInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || info.Shards != 4 {
		t.Fatalf("replicate info: %+v, %v", info, err)
	}
	resp, err = tc.coordSrv.Client().Get(tc.coordSrv.URL + "/api/replicas")
	if err != nil {
		t.Fatal(err)
	}
	views, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(views), tc.replicaSrvs[0].URL) {
		t.Fatalf("replica views: %s, %v", views, err)
	}
}
