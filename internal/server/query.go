package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"indice/internal/geo"
	"indice/internal/parallel"
	"indice/internal/query"
	"indice/internal/stats"
	"indice/internal/store"
	"indice/internal/table"
)

// maxQueryRows caps one /api/query row page; larger requests are
// clamped, with Limit in the response reporting the effective value.
const maxQueryRows = 1000

// queryRequest is the POST /api/query body. GET carries the same fields
// as URL parameters (q, preset, attrs, by, limit, offset), minus the
// JSON predicate form.
type queryRequest struct {
	// Q is the textual DSL form; Predicate the JSON encoding. At most
	// one may be set; the selection combines (AND) with the preset's.
	Q         string          `json:"q,omitempty"`
	Predicate json.RawMessage `json:"predicate,omitempty"`
	// Preset names a stakeholder whose default selection and attribute
	// set seed the query.
	Preset string `json:"preset,omitempty"`
	// Attrs are the numeric attributes to summarize; default: the
	// preset's attribute set, or none.
	Attrs []string `json:"attrs,omitempty"`
	// By groups matched rows by a categorical attribute.
	By string `json:"by,omitempty"`
	// Limit/Offset page matched rows into the response; Limit 0 returns
	// summaries only.
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
}

// attrStats is one attribute summary of a query response.
type attrStats struct {
	Attr   string  `json:"attr"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

// groupStats is one ?by= group of a query response.
type groupStats struct {
	Value string `json:"value"`
	Count int    `json:"count"`
	// Means holds the per-attribute mean over the group's valid cells;
	// attributes with no valid cell in the group are omitted.
	Means map[string]float64 `json:"means,omitempty"`
	// Quartiles holds per-attribute quantile summaries (sketch-derived,
	// within ±1.6% relative error; see stats.Sketch). They merge exactly
	// across replicas, so coordinator responses report the same values a
	// single node would.
	Quartiles map[string]groupQuartiles `json:"quartiles,omitempty"`
}

// groupQuartiles is one attribute's quantile summary within a group.
type groupQuartiles struct {
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	P90    float64 `json:"p90"`
}

// presetInfo echoes the stakeholder preset applied to a query.
type presetInfo struct {
	Stakeholder query.Stakeholder  `json:"stakeholder"`
	Attributes  []string           `json:"attributes"`
	Response    string             `json:"response"`
	Level       geo.Level          `json:"level"`
	Reports     []query.ReportKind `json:"reports"`
	Selection   string             `json:"selection,omitempty"`
}

// queryResponse is the JSON shape of /api/query.
type queryResponse struct {
	// Epoch is the snapshot epoch the response was computed under (0 in
	// static mode); every field is consistent with that one snapshot.
	Epoch     uint64 `json:"epoch"`
	StoreRows int    `json:"store_rows"`
	Matched   int    `json:"matched"`
	// Query is the canonical rendering of the effective predicate
	// (empty = select all); it re-parses to an equivalent predicate.
	Query  string           `json:"query"`
	Cached bool             `json:"cached"`
	Plan   *store.PlanStats `json:"plan,omitempty"`
	Preset *presetInfo      `json:"preset,omitempty"`
	Stats  []attrStats      `json:"stats,omitempty"`
	Groups []groupStats     `json:"groups,omitempty"`
	Rows   []map[string]any `json:"rows,omitempty"`
	Limit  int              `json:"limit"`
	Offset int              `json:"offset"`
	// Cluster appears on coordinator responses: how many replicas served
	// this answer and whether any leg failed over.
	Cluster *clusterInfo `json:"cluster,omitempty"`
}

// parseQueryRequest extracts a queryRequest from either the URL (GET)
// or the JSON body (POST).
func parseQueryRequest(r *http.Request) (*queryRequest, error) {
	if r.Method == http.MethodPost {
		var req queryRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON body: %w", err)
		}
		return &req, nil
	}
	q := r.URL.Query()
	req := &queryRequest{
		Q:      q.Get("q"),
		Preset: q.Get("preset"),
		By:     q.Get("by"),
	}
	if raw := q.Get("attrs"); raw != "" {
		for _, a := range strings.Split(raw, ",") {
			if a = strings.TrimSpace(a); a != "" {
				req.Attrs = append(req.Attrs, a)
			}
		}
	}
	var err error
	if req.Limit, err = intParam(q.Get("limit")); err != nil {
		return nil, fmt.Errorf("bad limit: %w", err)
	}
	if req.Offset, err = intParam(q.Get("offset")); err != nil {
		return nil, fmt.Errorf("bad offset: %w", err)
	}
	return req, nil
}

func intParam(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	return strconv.Atoi(raw)
}

// resolveQuery turns a request into the effective predicate, attribute
// list and preset echo. The preset's default selection ANDs with the
// request's own predicate; explicit attrs override the preset's.
func resolveQuery(req *queryRequest) (query.Predicate, []string, *presetInfo, error) {
	if req.Q != "" && len(req.Predicate) > 0 {
		return nil, nil, nil, errors.New("set either q or predicate, not both")
	}
	var pred query.Predicate
	var err error
	switch {
	case req.Q != "":
		if pred, err = query.Parse(req.Q); err != nil {
			return nil, nil, nil, err
		}
	case len(req.Predicate) > 0:
		if pred, err = query.UnmarshalPredicate(req.Predicate); err != nil {
			return nil, nil, nil, err
		}
	}
	attrs := req.Attrs
	var preset *presetInfo
	if req.Preset != "" {
		st, err := query.ParseStakeholder(req.Preset)
		if err != nil {
			return nil, nil, nil, err
		}
		prop, err := query.ProposalFor(st)
		if err != nil {
			return nil, nil, nil, err
		}
		preset = &presetInfo{
			Stakeholder: prop.Stakeholder,
			Attributes:  prop.Attributes,
			Response:    prop.Response,
			Level:       prop.Level,
			Reports:     prop.Reports,
		}
		if prop.Selection != nil {
			preset.Selection = prop.Selection.String()
			if pred != nil {
				pred = query.And{prop.Selection, pred}
			} else {
				pred = prop.Selection
			}
		}
		if len(attrs) == 0 {
			attrs = prop.Attributes
		}
	}
	return pred, attrs, preset, nil
}

// handleQuery serves the stakeholder query engine: predicate selection
// with filtered summaries, grouped statistics and row pages, computed
// on the published snapshot (live mode, planner pushdown) or the frozen
// engine table (static mode) and cached per (epoch, canonical query).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		http.Error(w, err.Error(), badBodyStatus(err))
		return
	}
	pred, attrs, preset, err := resolveQuery(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Limit < 0 || req.Offset < 0 {
		http.Error(w, "limit and offset must be non-negative", http.StatusBadRequest)
		return
	}
	if req.Limit > maxQueryRows {
		req.Limit = maxQueryRows
	}

	canonical := ""
	if pred != nil {
		canonical = pred.String()
	}

	// finish assembles, caches and returns the response for a computed
	// match set; errors carry their HTTP status for the writer below.
	finish := func(epoch uint64, storeRows int, matched *table.Table, plan *store.PlanStats) (*queryResponse, error) {
		resp := &queryResponse{
			Epoch:     epoch,
			StoreRows: storeRows,
			Matched:   matched.NumRows(),
			Query:     canonical,
			Plan:      plan,
			Preset:    preset,
			Limit:     req.Limit,
			Offset:    req.Offset,
		}
		var err error
		if resp.Stats, err = summarize(matched, attrs); err != nil {
			return nil, &statusError{http.StatusBadRequest, err}
		}
		if req.By != "" {
			if resp.Groups, err = groupBy(matched, req.By, attrs); err != nil {
				return nil, &statusError{http.StatusBadRequest, err}
			}
		}
		if req.Limit > 0 {
			if resp.Rows, err = rowPage(matched, req.Offset, req.Limit); err != nil {
				return nil, &statusError{http.StatusBadRequest, err}
			}
		}
		if key, ok := s.cacheKey(epoch, canonical, attrs, req); ok {
			s.cache.put(epoch, key, resp)
		}
		return resp, nil
	}

	// finishAgg is finish's counterpart for the aggregation pushdown
	// path: the response is assembled straight from the mergeable
	// accumulators — no row page exists, and none was materialized.
	finishAgg := func(epoch uint64, storeRows int, res *store.AggResult, plan *store.PlanStats) (*queryResponse, error) {
		resp := &queryResponse{
			Epoch:     epoch,
			StoreRows: storeRows,
			Matched:   res.Matched,
			Query:     canonical,
			Plan:      plan,
			Preset:    preset,
			Limit:     req.Limit,
			Offset:    req.Offset,
			Stats:     statsFromAccums(attrs, res.Totals),
		}
		if req.By != "" {
			resp.Groups = groupsFromAccums(res.Groups, attrs)
		}
		if key, ok := s.cacheKey(epoch, canonical, attrs, req); ok {
			s.cache.put(epoch, key, resp)
		}
		return resp, nil
	}

	var epoch uint64
	var compute func() (*queryResponse, error)
	if s.live != nil {
		pub := s.live.Current()
		if pub == nil || pub.Snapshot == nil {
			http.Error(w, errNotPublished.Error(), http.StatusServiceUnavailable)
			return
		}
		epoch = pub.Epoch
		compute = func() (*queryResponse, error) {
			if req.Limit == 0 {
				// Stats/grouped shape: push the aggregation into the
				// planner — group keys stay dictionary codes, values stay
				// packed, and no matched row is ever materialized.
				res, ps, err := pub.Snapshot.QueryAgg(pred, store.AggSpec{By: req.By, Attrs: attrs}, parallel.Auto)
				if err != nil {
					return nil, &statusError{queryErrStatus(err), err}
				}
				return finishAgg(epoch, pub.Snapshot.NumRows(), res, &ps)
			}
			tab, ps, err := pub.Snapshot.Query(pred, parallel.Auto)
			if err != nil {
				return nil, &statusError{queryErrStatus(err), err}
			}
			return finish(epoch, pub.Snapshot.NumRows(), tab, &ps)
		}
	} else {
		eng, _, ok := s.serveState(w)
		if !ok {
			return
		}
		compute = func() (*queryResponse, error) {
			matched := eng.Table()
			if pred != nil {
				var err error
				if matched, err = query.Select(eng.Table(), pred); err != nil {
					return nil, &statusError{queryErrStatus(err), err}
				}
			}
			return finish(0, eng.Table().NumRows(), matched, nil)
		}
	}

	var resp *queryResponse
	var shared bool
	if key, ok := s.cacheKey(epoch, canonical, attrs, req); ok {
		if resp, hit := s.cache.get(epoch, key); hit {
			cached := *resp
			cached.Cached = true
			writeJSON(w, &cached)
			return
		}
		// Cache miss: coalesce concurrent identical computations — under
		// a cold cache and many clients, one flight computes and every
		// duplicate request shares its result.
		resp, shared, err = s.flights.do(r.Context(), key, compute)
	} else {
		resp, err = compute()
	}
	if err != nil {
		code := http.StatusInternalServerError
		var se *statusError
		if errors.As(err, &se) {
			code = se.code
		}
		http.Error(w, err.Error(), code)
		return
	}
	if shared {
		coalesced := *resp
		coalesced.Cached = true
		writeJSON(w, &coalesced)
		return
	}
	writeJSON(w, resp)
}

// statusError carries the HTTP status a query computation failed with
// through the single-flight boundary.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// cacheKey canonicalizes the output options into the cache key. The
// epoch is embedded defensively even though the cache also partitions
// by it. Attrs render via %q (each element escaped and quoted) so a
// single element containing a comma cannot collide with a multi-element
// list. The preset name must participate even though the preset's
// selection is already folded into canonical: a preset with no default
// selection yields the same canonical predicate and attrs as the bare
// request, yet its response embeds a preset echo — without the name in
// the key the two requests would alias each other's cached responses.
func (s *Server) cacheKey(epoch uint64, canonical string, attrs []string, req *queryRequest) (string, bool) {
	if s.cache == nil {
		return "", false
	}
	return fmt.Sprintf("%d\x00%s\x00%q\x00%q\x00%q\x00%d\x00%d",
		epoch, canonical, req.Preset, attrs, req.By, req.Limit, req.Offset), true
}

// queryErrStatus maps predicate evaluation failures onto 400 for client
// mistakes (unknown attribute, type mismatch) and 500 otherwise.
func queryErrStatus(err error) int {
	if errors.Is(err, table.ErrNoColumn) || errors.Is(err, table.ErrTypeMismatch) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// summarize computes the distribution summary of each requested numeric
// attribute over the matched rows.
func summarize(tab *table.Table, attrs []string) ([]attrStats, error) {
	out := make([]attrStats, 0, len(attrs))
	for _, attr := range attrs {
		vals, err := tab.ValidFloats(attr)
		if err != nil {
			return nil, err
		}
		as := attrStats{Attr: attr, Count: len(vals)}
		if d, err := stats.Describe(vals); err == nil {
			as = attrStats{
				Attr: attr, Count: d.Count, Mean: d.Mean, StdDev: d.StdDev,
				Min: d.Min, Q1: d.Q1, Median: d.Median, Q3: d.Q3, Max: d.Max,
			}
		}
		out = append(out, as)
	}
	return out, nil
}

// statsFromAccums renders pushdown totals as attribute summaries.
// Compared to summarize, Count/Mean/Min/Max are bitwise-identical to the
// materializing path on finite data; the quartiles come from the
// mergeable sketch (±1.6% relative) instead of an exact sort.
func statsFromAccums(attrs []string, totals []table.AggAccum) []attrStats {
	out := make([]attrStats, 0, len(attrs))
	for k, attr := range attrs {
		a := totals[k]
		as := attrStats{Attr: attr, Count: int(a.R.Count)}
		if a.R.Count > 0 {
			as.Mean = a.Mean()
			as.StdDev = a.R.StdDev()
			as.Min = a.R.Min
			as.Max = a.R.Max
			as.Q1 = a.S.Quantile(0.25)
			as.Median = a.S.Quantile(0.5)
			as.Q3 = a.S.Quantile(0.75)
		}
		out = append(out, as)
	}
	return out
}

// groupsFromAccums renders pushdown group accumulators (already sorted
// by key) as response groups.
func groupsFromAccums(groups []*table.GroupAccum, attrs []string) []groupStats {
	out := make([]groupStats, 0, len(groups))
	for _, g := range groups {
		gs := groupStats{Value: g.Key, Count: g.Rows}
		for k, attr := range attrs {
			a := g.Attrs[k]
			if a.R.Count == 0 {
				continue
			}
			if gs.Means == nil {
				gs.Means = make(map[string]float64, len(attrs))
				gs.Quartiles = make(map[string]groupQuartiles, len(attrs))
			}
			gs.Means[attr] = a.Mean()
			gs.Quartiles[attr] = groupQuartiles{
				Q1:     a.S.Quantile(0.25),
				Median: a.S.Quantile(0.5),
				Q3:     a.S.Quantile(0.75),
				P90:    a.S.Quantile(0.9),
			}
		}
		out = append(out, gs)
	}
	return out
}

// groupBy aggregates the matched rows by a categorical attribute:
// per-value row count plus the mean and quantile summary of each
// summarized attribute. Invalid cells group under "" like
// Table.GroupByString. Groups are sorted by value for deterministic
// output. This is the materializing fallback (static mode, row-page
// requests); live stats-shaped queries take the pushdown path instead.
func groupBy(tab *table.Table, by string, attrs []string) ([]groupStats, error) {
	groups, err := tab.GroupByString(by)
	if err != nil {
		return nil, err
	}
	cols := make(map[string][]float64, len(attrs))
	masks := make(map[string][]bool, len(attrs))
	for _, attr := range attrs {
		vals, err := tab.Floats(attr)
		if err != nil {
			return nil, err
		}
		cols[attr] = vals
		masks[attr], _ = tab.ValidMask(attr)
	}
	out := make([]groupStats, 0, len(groups))
	for val, rows := range groups {
		g := groupStats{Value: val, Count: len(rows)}
		for _, attr := range attrs {
			sum, n := 0.0, 0
			sk := &stats.Sketch{}
			vals, mask := cols[attr], masks[attr]
			for _, r := range rows {
				if mask[r] {
					sum += vals[r]
					n++
					if v := vals[r]; !math.IsNaN(v) && !math.IsInf(v, 0) {
						sk.Add(v)
					}
				}
			}
			if n > 0 {
				if g.Means == nil {
					g.Means = make(map[string]float64, len(attrs))
				}
				g.Means[attr] = sum / float64(n)
			}
			if sk.Count() > 0 {
				if g.Quartiles == nil {
					g.Quartiles = make(map[string]groupQuartiles, len(attrs))
				}
				g.Quartiles[attr] = groupQuartiles{
					Q1:     sk.Quantile(0.25),
					Median: sk.Quantile(0.5),
					Q3:     sk.Quantile(0.75),
					P90:    sk.Quantile(0.9),
				}
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out, nil
}

// rowPage materializes one page of matched rows as attribute/value
// objects; invalid cells render as null.
func rowPage(tab *table.Table, offset, limit int) ([]map[string]any, error) {
	n := tab.NumRows()
	if offset >= n {
		return []map[string]any{}, nil
	}
	end := offset + limit
	if end > n {
		end = n
	}
	schema := tab.Schema()
	type column struct {
		field  table.Field
		valid  []bool
		floats []float64
		strs   []string
	}
	cols := make([]column, len(schema))
	for i, f := range schema {
		cols[i].field = f
		cols[i].valid, _ = tab.ValidMask(f.Name)
		if f.Type == table.Float64 {
			cols[i].floats, _ = tab.Floats(f.Name)
		} else {
			cols[i].strs, _ = tab.Strings(f.Name)
		}
	}
	rows := make([]map[string]any, 0, end-offset)
	for r := offset; r < end; r++ {
		row := make(map[string]any, len(schema))
		for _, c := range cols {
			switch {
			case !c.valid[r]:
				row[c.field.Name] = nil
			case c.field.Type == table.Float64:
				if v := c.floats[r]; math.IsNaN(v) || math.IsInf(v, 0) {
					row[c.field.Name] = nil
				} else {
					row[c.field.Name] = v
				}
			default:
				row[c.field.Name] = c.strs[r]
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// handlePresets lists the stakeholder query presets: default selection,
// attribute set, granularity and proposed reports per profile.
func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	out := make([]presetInfo, 0, 3)
	for _, st := range query.Stakeholders() {
		prop, err := query.ProposalFor(st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		info := presetInfo{
			Stakeholder: prop.Stakeholder,
			Attributes:  prop.Attributes,
			Response:    prop.Response,
			Level:       prop.Level,
			Reports:     prop.Reports,
		}
		if prop.Selection != nil {
			info.Selection = prop.Selection.String()
		}
		out = append(out, info)
	}
	writeJSON(w, out)
}
