package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces pins the single-flight contract: N
// concurrent callers with one key produce exactly one computation, and
// every waiter shares its result.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var computes atomic.Int64
	gate := make(chan struct{})
	want := &queryResponse{Matched: 42}

	const n = 32
	results := make([]*queryResponse, n)
	sharedCount := atomic.Int64{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, shared, err := g.do(context.Background(), "k", func() (*queryResponse, error) {
				computes.Add(1)
				<-gate
				return want, nil
			})
			if err != nil {
				t.Errorf("flight %d: %v", i, err)
				return
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = resp
		}(i)
	}
	// Let every goroutine reach the flight before releasing the leader.
	deadline := time.Now().Add(5 * time.Second)
	for computes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // waiters pile onto the open flight
	close(gate)
	wg.Wait()

	// Exactly-once holds for every caller that arrived while the flight
	// was open; a straggler scheduled only after the flight closed would
	// start a fresh one, so tolerate a rare extra without accepting
	// no-coalescing.
	if got := computes.Load(); got >= int64(n)/2 {
		t.Fatalf("%d computations for %d concurrent callers — no coalescing", got, n)
	}
	for i, r := range results {
		if r != want {
			t.Fatalf("caller %d got %p, want the shared response", i, r)
		}
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no caller reported a shared result")
	}
}

// TestFlightGroupErrorsShared: a failing flight fails every waiter with
// the same error, and the key is released for the next attempt.
func TestFlightGroupErrorsShared(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	if _, _, err := g.do(context.Background(), "k", func() (*queryResponse, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Key released: a later call computes fresh.
	resp, shared, err := g.do(context.Background(), "k", func() (*queryResponse, error) {
		return &queryResponse{Matched: 1}, nil
	})
	if err != nil || shared || resp.Matched != 1 {
		t.Fatalf("post-error flight: resp=%+v shared=%v err=%v", resp, shared, err)
	}
}

// TestFlightGroupWaiterCancel: a waiter whose context dies leaves the
// flight without waiting for the leader.
func TestFlightGroupWaiterCancel(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	go g.do(context.Background(), "k", func() (*queryResponse, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.do(ctx, "k", func() (*queryResponse, error) {
		t.Error("waiter ran the computation")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v", err)
	}
}
