package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"indice/internal/parallel"
	"indice/internal/query"
	"indice/internal/scaleout"
	"indice/internal/store"
)

// handleReplicateInfo serves the layout a booting replica must mirror.
func (s *Server) handleReplicateInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.leader.Info())
}

// handleReplicateStatus serves this replica's position for the
// coordinator's router and for operators.
func (s *Server) handleReplicateStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.replica.Status())
}

// handlePartialQuery serves one scatter-gather leg: the query evaluated
// over one shard range of one pinned leader epoch, answering mergeable
// Welford partials instead of final statistics. 412 when the requested
// epoch is no longer (or not yet) held in the snapshot ring — the
// coordinator's signal to fail the leg over.
func (s *Server) handlePartialQuery(w http.ResponseWriter, r *http.Request) {
	var spec scaleout.QuerySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), badBodyStatus(err))
		return
	}
	snap, ok := s.replica.SnapshotAt(spec.Epoch)
	if !ok {
		http.Error(w, fmt.Sprintf("epoch %d not held by this replica", spec.Epoch), http.StatusPreconditionFailed)
		return
	}
	if spec.ShardFrom < 0 || spec.ShardTo > snap.NumShards() || spec.ShardFrom >= spec.ShardTo {
		http.Error(w, fmt.Sprintf("bad shard range [%d,%d) of %d", spec.ShardFrom, spec.ShardTo, snap.NumShards()), http.StatusBadRequest)
		return
	}
	var pred query.Predicate
	if spec.Q != "" {
		var err error
		if pred, err = query.Parse(spec.Q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	var p *scaleout.Partial
	if spec.RowsLimit == 0 {
		// Stats/grouped leg: aggregation pushdown, no row materialization
		// on the replica either.
		res, ps, err := snap.QueryShardsAgg(pred, spec.ShardFrom, spec.ShardTo, parallel.Auto,
			store.AggSpec{By: spec.By, Attrs: spec.Attrs})
		if err != nil {
			http.Error(w, err.Error(), queryErrStatus(err))
			return
		}
		attrs, groups := scaleout.PartialFromAgg(res, spec.Attrs, spec.By)
		p = &scaleout.Partial{
			Epoch:   spec.Epoch,
			Matched: res.Matched,
			Query:   spec.Q,
			Attrs:   attrs,
			Groups:  groups,
			Plan:    ps,
		}
	} else {
		tab, ps, err := snap.QueryShards(pred, spec.ShardFrom, spec.ShardTo, parallel.Auto)
		if err != nil {
			http.Error(w, err.Error(), queryErrStatus(err))
			return
		}
		attrs, groups, err := scaleout.BuildPartial(tab, spec.Attrs, spec.By)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p = &scaleout.Partial{
			Epoch:   spec.Epoch,
			Matched: tab.NumRows(),
			Query:   spec.Q,
			Attrs:   attrs,
			Groups:  groups,
			Plan:    ps,
		}
		limit := spec.RowsLimit
		if limit > maxQueryRows*2 {
			limit = maxQueryRows * 2
		}
		if p.Rows, err = rowPage(tab, 0, limit); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	for i := spec.ShardFrom; i < spec.ShardTo; i++ {
		p.StoreRows += snap.ShardRows(i)
	}
	writeJSON(w, p)
}

// clusterInfo is the scatter-gather block of a coordinator query
// response.
type clusterInfo struct {
	// Replicas is how many replicas served this response; Degraded how
	// many shard-range legs had to fail over from their primary.
	Replicas int `json:"replicas"`
	Degraded int `json:"degraded,omitempty"`
}

// handleCoordQuery serves /api/query on a coordinator: resolve the
// request exactly like a single node, fan the canonical predicate out
// over the replicas at the max common epoch, and merge the partials into
// the single-node response shape. Merged responses carry the full
// attribute summary: count/mean/stddev/min/max from Welford state, and
// quartiles from the merged quantile sketches — sketch merges are exact,
// so a coordinator reports the same quartiles a single node would.
func (s *Server) handleCoordQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		http.Error(w, err.Error(), badBodyStatus(err))
		return
	}
	pred, attrs, preset, err := resolveQuery(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Limit < 0 || req.Offset < 0 {
		http.Error(w, "limit and offset must be non-negative", http.StatusBadRequest)
		return
	}
	if req.Limit > maxQueryRows {
		req.Limit = maxQueryRows
	}
	canonical := ""
	if pred != nil {
		canonical = pred.String()
	}

	// The cache partitions by the epoch the next query would pin to; a
	// concurrent epoch change between the probe and the fan-out just
	// misses.
	cacheEpoch, cacheErr := s.coord.Epoch()
	var key string
	var keyOK bool
	if cacheErr == nil {
		if key, keyOK = s.cacheKey(cacheEpoch, canonical, attrs, req); keyOK {
			if resp, hit := s.cache.get(cacheEpoch, key); hit {
				cached := *resp
				cached.Cached = true
				writeJSON(w, &cached)
				return
			}
		}
	}

	compute := func(ctx context.Context) (*queryResponse, error) {
		spec := scaleout.QuerySpec{
			Q:         canonical,
			Attrs:     attrs,
			By:        req.By,
			RowsLimit: req.Offset + req.Limit,
		}
		m, err := s.coord.Query(ctx, spec)
		if err != nil {
			return nil, err
		}
		resp := &queryResponse{
			Epoch:     m.Epoch,
			StoreRows: m.StoreRows,
			Matched:   m.Matched,
			Query:     canonical,
			Plan:      &m.Plan,
			Preset:    preset,
			Limit:     req.Limit,
			Offset:    req.Offset,
			Cluster:   &clusterInfo{Replicas: m.Replicas, Degraded: m.Degraded},
		}
		resp.Stats = make([]attrStats, 0, len(attrs))
		for _, attr := range attrs {
			rs := m.Attrs[attr]
			as := attrStats{
				Attr: attr, Count: rs.Count, Mean: rs.Mean, StdDev: rs.StdDev(),
				Min: rs.Min, Max: rs.Max,
			}
			if sk := m.AttrSketches[attr]; sk.Count() > 0 {
				as.Q1 = sk.Quantile(0.25)
				as.Median = sk.Quantile(0.5)
				as.Q3 = sk.Quantile(0.75)
			}
			resp.Stats = append(resp.Stats, as)
		}
		if req.By != "" {
			resp.Groups = make([]groupStats, 0, len(m.Groups))
			for _, g := range m.Groups {
				gs := groupStats{Value: g.Value, Count: g.Count, Means: g.Means}
				for attr, sk := range g.Sketches {
					if sk.Count() == 0 {
						continue
					}
					if gs.Quartiles == nil {
						gs.Quartiles = make(map[string]groupQuartiles, len(g.Sketches))
					}
					gs.Quartiles[attr] = groupQuartiles{
						Q1:     sk.Quantile(0.25),
						Median: sk.Quantile(0.5),
						Q3:     sk.Quantile(0.75),
						P90:    sk.Quantile(0.9),
					}
				}
				resp.Groups = append(resp.Groups, gs)
			}
		}
		if req.Limit > 0 {
			rows := m.Rows
			end := req.Offset + req.Limit
			if end > len(rows) {
				end = len(rows)
			}
			if req.Offset < end {
				resp.Rows = rows[req.Offset:end]
			} else {
				resp.Rows = []map[string]any{}
			}
		}
		if key, ok := s.cacheKey(m.Epoch, canonical, attrs, req); ok {
			s.cache.put(m.Epoch, key, resp)
		}
		return resp, nil
	}

	// Cache miss: coalesce concurrent identical fan-outs into one
	// flight per cache key. The flight leader computes on a detached
	// context (bounded by the coordinator's own per-leg timeouts) so a
	// departing waiter cannot fail everyone behind it.
	var resp *queryResponse
	var shared bool
	var err2 error
	if keyOK {
		base := context.WithoutCancel(r.Context())
		resp, shared, err2 = s.flights.do(r.Context(), key, func() (*queryResponse, error) {
			return compute(base)
		})
	} else {
		resp, err2 = compute(r.Context())
	}
	if err2 != nil {
		var ce *scaleout.ClientError
		switch {
		case errors.As(err2, &ce):
			http.Error(w, ce.Msg, http.StatusBadRequest)
		case errors.Is(err2, scaleout.ErrNoCommonEpoch):
			http.Error(w, err2.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err2.Error(), http.StatusBadGateway)
		}
		return
	}
	if shared {
		coalesced := *resp
		coalesced.Cached = true
		writeJSON(w, &coalesced)
		return
	}
	writeJSON(w, resp)
}

// handleReplicas reports the coordinator's cached view of its replicas.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.coord.Views())
}
