package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/store"
	"indice/internal/synth"
)

func getQuery(t *testing.T, url string) (int, *queryResponse, string) {
	t.Helper()
	code, body := get(t, url)
	if code != http.StatusOK {
		return code, nil, body
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /api/query JSON: %v\n%s", err, body)
	}
	return code, &resp, body
}

func TestQueryStatic(t *testing.T) {
	ts := testServer(t, false)

	code, resp, body := getQuery(t, ts.URL+"/api/query?q="+
		"intended_use+%3D+E.1.1&attrs="+epc.AttrEPH+"&limit=5")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp.Matched == 0 || resp.Matched > resp.StoreRows {
		t.Fatalf("matched = %d of %d", resp.Matched, resp.StoreRows)
	}
	if resp.Query != "intended_use in {E.1.1}" {
		t.Fatalf("canonical query = %q", resp.Query)
	}
	if len(resp.Stats) != 1 || resp.Stats[0].Attr != epc.AttrEPH || resp.Stats[0].Count == 0 {
		t.Fatalf("stats = %+v", resp.Stats)
	}
	if len(resp.Rows) != 5 {
		t.Fatalf("rows = %d", len(resp.Rows))
	}
	for _, row := range resp.Rows {
		if row[epc.AttrIntendedUse] != "E.1.1" {
			t.Fatalf("row escaped the selection: %v", row)
		}
	}
	if resp.Cached {
		t.Fatal("first query must not be cached")
	}

	// The identical query must come from the cache; a different one not.
	_, resp2, _ := getQuery(t, ts.URL+"/api/query?q="+
		"intended_use+%3D+E.1.1&attrs="+epc.AttrEPH+"&limit=5")
	if !resp2.Cached {
		t.Fatal("second identical query should hit the cache")
	}
	if resp2.Matched != resp.Matched || resp2.StoreRows != resp.StoreRows {
		t.Fatalf("cached response drifted: %+v vs %+v", resp2, resp)
	}
	_, resp3, _ := getQuery(t, ts.URL+"/api/query?q="+
		"intended_use+%3D+E.1.1&attrs="+epc.AttrEPH+"&limit=6")
	if resp3.Cached {
		t.Fatal("different options must not hit the cache")
	}
}

func TestQueryGroupsAndPresets(t *testing.T) {
	ts := testServer(t, false)

	_, resp, _ := getQuery(t, ts.URL+"/api/query?preset=pa&by="+epc.AttrDistrict)
	if resp.Preset == nil || resp.Preset.Stakeholder != "public-administration" {
		t.Fatalf("preset echo = %+v", resp.Preset)
	}
	// The PA preset defaults to the residential selection and the
	// case-study attribute set.
	if !strings.Contains(resp.Query, "E.1.1") {
		t.Fatalf("preset selection missing: %q", resp.Query)
	}
	if len(resp.Stats) != len(epc.CaseStudyAttributes) {
		t.Fatalf("stats = %d attrs, want %d", len(resp.Stats), len(epc.CaseStudyAttributes))
	}
	if len(resp.Groups) == 0 {
		t.Fatal("no district groups")
	}
	total := 0
	for _, g := range resp.Groups {
		total += g.Count
	}
	if total != resp.Matched {
		t.Fatalf("group counts sum to %d, matched %d", total, resp.Matched)
	}
	// Preset + explicit q combine conjunctively.
	_, narrowed, _ := getQuery(t, ts.URL+"/api/query?preset=pa&q="+epc.AttrEPH+"+%3E%3D+100")
	if narrowed.Matched > resp.Matched {
		t.Fatalf("AND-refined preset grew: %d > %d", narrowed.Matched, resp.Matched)
	}
	if !strings.Contains(narrowed.Query, "AND") {
		t.Fatalf("combined query = %q", narrowed.Query)
	}

	// /api/presets lists all three profiles.
	code, body := get(t, ts.URL+"/api/presets")
	if code != http.StatusOK {
		t.Fatalf("presets status %d", code)
	}
	var presets []presetInfo
	if err := json.Unmarshal([]byte(body), &presets); err != nil {
		t.Fatal(err)
	}
	if len(presets) != 3 {
		t.Fatalf("presets = %d", len(presets))
	}
}

func TestQueryPost(t *testing.T) {
	ts := testServer(t, false)

	body := `{"predicate":{"op":"and","args":[{"op":"in","attr":"intended_use","values":["E.1.1"]},{"op":"range","attr":"eph","min":0,"max":200}]},"attrs":["eph"],"limit":3}`
	code, out := post(t, ts.URL+"/api/query", "application/json", []byte(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Matched == 0 || len(resp.Rows) != 3 {
		t.Fatalf("matched %d rows %d", resp.Matched, len(resp.Rows))
	}
	// The POST and GET forms of the same query share one cache entry.
	dsl := "intended_use in {E.1.1} AND eph in [0, 200]"
	_, viaGet, _ := getQuery(t, ts.URL+"/api/query?attrs=eph&limit=3&q="+
		strings.ReplaceAll(strings.ReplaceAll(dsl, " ", "+"), "{", "%7B"))
	if viaGet.Query != resp.Query {
		t.Fatalf("canonical forms differ: %q vs %q", viaGet.Query, resp.Query)
	}
	if !viaGet.Cached {
		t.Fatal("GET form of the same canonical query should hit the cache")
	}
}

func TestQueryBadRequests(t *testing.T) {
	ts := testServer(t, false)
	for _, url := range []string{
		"/api/query?q=eph+in+[",             // parse error
		"/api/query?q=ghost+%3D+x",          // unknown attribute
		"/api/query?q=eph+%3D+x",            // type mismatch (In on numeric)
		"/api/query?attrs=ghost",            // unknown stats attribute
		"/api/query?attrs=city",             // non-numeric stats attribute
		"/api/query?by=ghost",               // unknown group attribute
		"/api/query?by=eph",                 // numeric group attribute
		"/api/query?limit=-1",               // negative limit
		"/api/query?offset=x",               // non-integer offset
		"/api/query?preset=alien",           // unknown preset
		"/api/query?q=eph+in+[1,2]+garbage", // trailing garbage
	} {
		code, body := get(t, ts.URL+url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", url, code, strings.TrimSpace(body))
		}
	}
	// POST with both q and predicate is ambiguous.
	code, _ := post(t, ts.URL+"/api/query", "application/json",
		[]byte(`{"q":"eph in [1,2]","predicate":{"op":"in","attr":"city","values":["x"]}}`))
	if code != http.StatusBadRequest {
		t.Errorf("q+predicate: status %d, want 400", code)
	}
	// A single attrs element containing a comma must not collide in the
	// cache with the equivalent multi-element list: warm the two-element
	// form, then the one-element form must recompute (and fail on the
	// unknown column) instead of serving the cached response.
	warm := `{"q":"intended_use = E.1.1","attrs":["eph","u_windows"]}`
	if code, body := post(t, ts.URL+"/api/query", "application/json", []byte(warm)); code != http.StatusOK {
		t.Fatalf("warm query: %d %s", code, body)
	}
	collide := `{"q":"intended_use = E.1.1","attrs":["eph,u_windows"]}`
	if code, body := post(t, ts.URL+"/api/query", "application/json", []byte(collide)); code != http.StatusBadRequest {
		t.Errorf("comma-in-attr collided with the cached list: %d %s", code, body)
	}

	// Methods other than GET/POST/HEAD are rejected.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}
}

// TestQueryCachePresetAndPagingDoNotAlias pins the cache-key shape. The
// energy-scientist preset carries no default selection, so its canonical
// predicate and (with explicit attrs) attribute list are identical to the
// bare request's — the preset name itself must keep the two cache entries
// apart, or one request is served the other's response (with the wrong
// preset echo). Distinct row pages of one query must likewise never share
// an entry.
func TestQueryCachePresetAndPagingDoNotAlias(t *testing.T) {
	ts := testServer(t, false)

	bare := "/api/query?q=eph+%3E%3D+100&attrs=eph"
	withPreset := bare + "&preset=energy-scientist"

	_, plain, _ := getQuery(t, ts.URL+bare)
	if plain.Preset != nil {
		t.Fatalf("bare query has a preset echo: %+v", plain.Preset)
	}
	_, preset, _ := getQuery(t, ts.URL+withPreset)
	if preset.Cached {
		t.Fatal("preset query aliased the bare query's cache entry")
	}
	if preset.Preset == nil || preset.Preset.Stakeholder != "energy-scientist" {
		t.Fatalf("preset echo = %+v", preset.Preset)
	}
	if preset.Matched != plain.Matched {
		t.Fatalf("same selection, different matches: %d vs %d", preset.Matched, plain.Matched)
	}
	// Each form must now hit its own entry, echo intact.
	_, plain2, _ := getQuery(t, ts.URL+bare)
	if !plain2.Cached || plain2.Preset != nil {
		t.Fatalf("bare re-query: cached=%v preset=%+v", plain2.Cached, plain2.Preset)
	}
	_, preset2, _ := getQuery(t, ts.URL+withPreset)
	if !preset2.Cached || preset2.Preset == nil {
		t.Fatalf("preset re-query: cached=%v preset=%+v", preset2.Cached, preset2.Preset)
	}

	// Two pages of one query are distinct cache entries with distinct rows.
	_, page1, _ := getQuery(t, ts.URL+bare+"&limit=2&offset=0")
	_, page2, _ := getQuery(t, ts.URL+bare+"&limit=2&offset=2")
	if page2.Cached {
		t.Fatal("second page aliased the first page's cache entry")
	}
	if len(page1.Rows) != 2 || len(page2.Rows) != 2 {
		t.Fatalf("page sizes %d, %d", len(page1.Rows), len(page2.Rows))
	}
	if fmt.Sprint(page1.Rows[0]) == fmt.Sprint(page2.Rows[0]) {
		t.Fatal("pages at different offsets returned the same rows")
	}
}

func TestQueryLivePlansAndInvalidates(t *testing.T) {
	ts, live, ds := liveServer(t, 1500)

	// Before the first publish the query engine has no snapshot.
	code, _, body := getQuery(t, ts.URL+"/api/query?q=eph+%3E%3D+0")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish status %d: %s", code, body)
	}

	var buf bytes.Buffer
	if err := ds.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, ts.URL+"/api/ingest", "text/csv", buf.Bytes()); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Zone equality must take the indexed path on the live snapshot.
	q := "/api/query?attrs=eph&q=" + epc.AttrEnergyClass + "+in+%7BC,D%7D"
	_, resp, _ := getQuery(t, ts.URL+q)
	if resp.Epoch == 0 {
		t.Fatalf("live response has no epoch: %+v", resp)
	}
	if resp.Plan == nil || resp.Plan.IndexedShards == 0 || resp.Plan.ScannedRows != 0 {
		t.Fatalf("class membership did not push down: %+v", resp.Plan)
	}
	if resp.Matched == 0 || resp.Matched > resp.StoreRows {
		t.Fatalf("matched %d of %d", resp.Matched, resp.StoreRows)
	}
	_, hit, _ := getQuery(t, ts.URL+q)
	if !hit.Cached || hit.Epoch != resp.Epoch {
		t.Fatalf("expected cache hit at epoch %d, got %+v", resp.Epoch, hit)
	}

	// New data + refresh publish a new epoch; the cache must miss and
	// recompute, never serving the old epoch's result.
	if code, body := post(t, ts.URL+"/api/ingest", "text/csv", buf.Bytes()); code != http.StatusOK {
		t.Fatalf("re-ingest: %d %s", code, body)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	_, fresh, _ := getQuery(t, ts.URL+q)
	if fresh.Cached {
		t.Fatal("cache served across a refresh")
	}
	if fresh.Epoch <= resp.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", resp.Epoch, fresh.Epoch)
	}
	if fresh.StoreRows <= resp.StoreRows {
		t.Fatalf("store rows did not grow: %d -> %d", resp.StoreRows, fresh.StoreRows)
	}
}

// TestQueryConcurrentConsistency is the end-to-end race check: ingest,
// refresh and query clients hammer one live server concurrently; every
// query response must be internally consistent with exactly one
// snapshot epoch (identical queries at one epoch agree on every count)
// and the cache must never serve an epoch older than the published
// state that preceded the request.
func TestQueryConcurrentConsistency(t *testing.T) {
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 30, 8
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = 3000
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	scfg := store.DefaultConfig()
	scfg.Shards = 4
	scfg.SegmentRows = 512
	st, err := store.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	// SkipAnalysis keeps refreshes fast so many epochs publish while the
	// query clients run.
	live, err := core.NewLive(st, city.Hierarchy, core.LiveConfig{MinRows: 100, SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewLive(live)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	chunks := csvChunks(t, ds.Table, 250)
	if code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunks[0]); code != http.StatusOK {
		t.Fatalf("seed ingest: %d %s", code, body)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"/api/query?attrs=eph&q=" + epc.AttrEnergyClass + "+in+%7BC,D,E%7D",
		"/api/query?q=eph+%3E%3D+100",
		"/api/query?preset=pa&by=" + epc.AttrDistrict,
		"/api/query?q=not+(" + epc.AttrIntendedUse + "+%3D+E.1.1)",
	}

	type observation struct {
		query     string
		epoch     uint64
		storeRows int
		matched   int
	}
	var (
		mu  sync.Mutex
		obs []observation
	)
	errs := make(chan error, 64)
	var wg sync.WaitGroup

	// Ingest client: streams the remaining chunks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, chunk := range chunks[1:] {
			if code, body := post(t, ts.URL+"/api/ingest", "text/csv", chunk); code != http.StatusOK {
				errs <- fmt.Errorf("ingest: %d %s", code, body)
				return
			}
		}
	}()

	// Refresh client: publishes new epochs while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if code, body := post(t, ts.URL+"/api/refresh", "application/json", nil); code != http.StatusOK {
				errs <- fmt.Errorf("refresh: %d %s", code, body)
				return
			}
		}
	}()

	// Query clients: issue every query repeatedly, recording what they
	// saw and bounding the response epoch by the published epochs
	// around the request.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				q := queries[(c+i)%len(queries)]
				before := live.Current().Epoch
				code, body := get(t, ts.URL+q)
				if code != http.StatusOK {
					errs <- fmt.Errorf("query %s: %d %s", q, code, body)
					return
				}
				after := live.Current().Epoch
				var resp queryResponse
				if err := json.Unmarshal([]byte(body), &resp); err != nil {
					errs <- fmt.Errorf("query %s: %v", q, err)
					return
				}
				if resp.Epoch < before || resp.Epoch > after {
					errs <- fmt.Errorf("query %s: epoch %d outside published window [%d, %d] (stale cache?)",
						q, resp.Epoch, before, after)
					return
				}
				if resp.Matched > resp.StoreRows {
					errs <- fmt.Errorf("query %s: matched %d > store rows %d", q, resp.Matched, resp.StoreRows)
					return
				}
				mu.Lock()
				obs = append(obs, observation{q, resp.Epoch, resp.StoreRows, resp.Matched})
				mu.Unlock()
			}
		}(c)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Torn-read check: all observations of one (query, epoch) pair must
	// agree exactly — a response mixing two snapshots would disagree on
	// store_rows or matched.
	type key struct {
		query string
		epoch uint64
	}
	seen := make(map[key]observation)
	for _, o := range obs {
		k := key{o.query, o.epoch}
		if prev, ok := seen[k]; ok {
			if prev.storeRows != o.storeRows || prev.matched != o.matched {
				t.Fatalf("torn read at %v: %+v vs %+v", k, prev, o)
			}
		} else {
			seen[k] = o
		}
	}
	if len(obs) == 0 {
		t.Fatal("no query observations recorded")
	}
}

// TestQueryAggCacheNeverAliasesRowPages pins the cache-shape contract of
// the pushdown path: a grouped/stats query (Limit 0) and the same
// predicate's row-page query are distinct cache entries, the grouped
// entry stores the aggregate payload only (no row page), and serving one
// never leaks the other's shape.
func TestQueryAggCacheNeverAliasesRowPages(t *testing.T) {
	ts, live, ds := liveServer(t, 1200)
	var buf bytes.Buffer
	if err := ds.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, ts.URL+"/api/ingest", "text/csv", buf.Bytes()); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}

	base := "/api/query?attrs=" + epc.AttrEPH + "&by=" + epc.AttrEnergyClass
	_, grouped, body := getQuery(t, ts.URL+base)
	if grouped == nil {
		t.Fatalf("grouped query failed: %s", body)
	}
	if grouped.Cached || len(grouped.Rows) != 0 {
		t.Fatalf("grouped response: cached=%v rows=%d, want fresh aggregate-only", grouped.Cached, len(grouped.Rows))
	}
	if len(grouped.Groups) == 0 {
		t.Fatal("grouped response has no groups")
	}
	quartiled := 0
	for _, g := range grouped.Groups {
		for _, qs := range g.Quartiles {
			if qs.Median != 0 || qs.Q1 != 0 || qs.Q3 != 0 {
				quartiled++
			}
			if qs.Q1 > qs.Median || qs.Median > qs.Q3 || qs.Q3 > qs.P90 {
				t.Fatalf("group %q quartiles out of order: %+v", g.Value, qs)
			}
		}
	}
	if quartiled == 0 {
		t.Fatal("no group reported non-zero quartiles")
	}

	// The same predicate's row-page query must not see (or overwrite) the
	// grouped entry: distinct Limit/Offset, distinct cache keys.
	_, page, _ := getQuery(t, ts.URL+base+"&limit=3")
	if page.Cached {
		t.Fatal("row-page query aliased the grouped cache entry")
	}
	if len(page.Rows) != 3 {
		t.Fatalf("row page has %d rows, want 3", len(page.Rows))
	}

	// Re-running both shapes hits each one's own entry with its own shape.
	_, grouped2, _ := getQuery(t, ts.URL+base)
	if !grouped2.Cached || len(grouped2.Rows) != 0 || len(grouped2.Groups) != len(grouped.Groups) {
		t.Fatalf("grouped re-query: cached=%v rows=%d groups=%d/%d",
			grouped2.Cached, len(grouped2.Rows), len(grouped2.Groups), len(grouped.Groups))
	}
	_, page2, _ := getQuery(t, ts.URL+base+"&limit=3")
	if !page2.Cached || len(page2.Rows) != 3 {
		t.Fatalf("row-page re-query: cached=%v rows=%d", page2.Cached, len(page2.Rows))
	}

	// Pushdown vs materialize equivalence at the API boundary: the
	// row-page response computes its summary from the materialized rows,
	// the grouped one from the accumulators; counts and extremes agree
	// exactly, means to float tolerance.
	if len(grouped.Stats) != 1 || len(page.Stats) != 1 {
		t.Fatalf("stats blocks: %d vs %d", len(grouped.Stats), len(page.Stats))
	}
	g, p := grouped.Stats[0], page.Stats[0]
	if g.Count != p.Count || g.Min != p.Min || g.Max != p.Max {
		t.Fatalf("pushdown stats %+v diverge from materialized %+v", g, p)
	}
	if diff := g.Mean - p.Mean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("means diverge: %v vs %v", g.Mean, p.Mean)
	}
}
