package server

import (
	"net/http"
	"sync"
	"time"

	"indice/internal/obs"
)

// HTTP-layer metric handles, resolved once at init (conventions in
// internal/store/metrics.go). Per-route series live in routeMetrics,
// resolved at route registration so the request path never pays a
// registry lookup.
var (
	mHTTPInFlight   = obs.Default.Gauge("indice_http_in_flight_requests", "Requests currently being served.")
	mHTTPPanics     = obs.Default.Counter("indice_http_panics_total", "Handler panics recovered by the middleware (answered as 500).")
	mCacheHits      = obs.Default.Counter("indice_query_cache_hits_total", "Query result cache hits (process-wide, across server instances).")
	mCacheMisses    = obs.Default.Counter("indice_query_cache_misses_total", "Query result cache misses (process-wide, across server instances).")
	mQueryCoalesced = obs.Default.Counter("indice_query_coalesced_total", "Query requests that waited on another request's in-flight identical computation instead of recomputing (single-flight).")

	serverStart = time.Now()
)

// statusClasses are the label values of indice_http_requests_total.
var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics carries one route's series: the latency histogram and a
// counter per status class. All five class counters are resolved
// eagerly so the /metrics exposition is shape-stable from process boot.
type routeMetrics struct {
	seconds *obs.Histogram
	classes [len(statusClasses)]*obs.Counter
}

var (
	routeMu  sync.Mutex
	routeObs = make(map[string]*routeMetrics)
)

// metricsForRoute resolves (or returns the cached) per-route series.
// Routes are shared process-wide: two servers registering the same
// pattern account into the same series, like every other registry
// metric.
func metricsForRoute(pattern string) *routeMetrics {
	routeMu.Lock()
	defer routeMu.Unlock()
	if rm, ok := routeObs[pattern]; ok {
		return rm
	}
	rm := &routeMetrics{
		seconds: obs.Default.Histogram("indice_http_request_seconds",
			"End-to-end request latency by route, measured around the whole middleware chain.",
			obs.Nanos, "route", pattern),
	}
	for i, class := range statusClasses {
		rm.classes[i] = obs.Default.Counter("indice_http_requests_total",
			"Requests served, by route and status class.",
			"route", pattern, "class", class)
	}
	routeObs[pattern] = rm
	return rm
}

// observe accounts one finished request.
func (rm *routeMetrics) observe(status int, took time.Duration) {
	rm.seconds.ObserveDuration(took)
	i := status/100 - 1
	if i < 0 {
		i = 0
	} else if i >= len(rm.classes) {
		i = len(rm.classes) - 1
	}
	rm.classes[i].Inc()
}

// mergedRouteLatency folds every route's latency histogram into one
// snapshot — the process-wide request latency distribution behind the
// /api/health quantiles.
func mergedRouteLatency() obs.HistSnapshot {
	routeMu.Lock()
	defer routeMu.Unlock()
	var snap obs.HistSnapshot
	for _, rm := range routeObs {
		snap.Merge(rm.seconds.Load())
	}
	return snap
}

// statusWriter captures the response status for class accounting. The
// first explicit WriteHeader wins (matching net/http, which ignores and
// warns on later calls); an implicit write counts as 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// status returns the effective status (200 if the handler never wrote —
// net/http sends 200 on an empty-body return as well).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
