package server

import (
	"net/http"
	"time"

	"indice/internal/obs"
)

// healthResponse is the JSON shape of GET /api/health: a human-readable
// summary of the serving state and HTTP path, complementing the machine
// exposition at /metrics.
type healthResponse struct {
	// Status is "ok", or "starting" for a live server before the first
	// successful refresh publishes a state.
	Status        string  `json:"status"`
	Mode          string  `json:"mode"` // static, live, leader, replica or coordinator
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Rows is the serving row count: the engine table (static) or the
	// live store's current rows (live, ahead of the published state).
	Rows      int    `json:"rows"`
	Published bool   `json:"published"`
	Epoch     uint64 `json:"epoch,omitempty"`
	// Refreshes split by pipeline, as on /api/store.
	Refreshes            uint64     `json:"refreshes,omitempty"`
	FullRefreshes        uint64     `json:"full_refreshes,omitempty"`
	IncrementalRefreshes uint64     `json:"incremental_refreshes,omitempty"`
	LastError            string     `json:"last_error,omitempty"`
	HTTP                 httpHealth `json:"http"`
}

// httpHealth summarizes the HTTP path: request volume and the latency
// quantiles of every route's histogram merged into one distribution.
type httpHealth struct {
	Requests   uint64  `json:"requests"`
	InFlight   float64 `json:"in_flight"`
	Panics     uint64  `json:"panics"`
	CacheHits  uint64  `json:"cache_hits"`
	CacheMiss  uint64  `json:"cache_misses"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// handleHealth serves the GET /api/health summary. It always answers
// 200: "starting" is a state to report, not a failure — probes that
// need readiness semantics should check published.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	lat := mergedRouteLatency()
	resp := healthResponse{
		Status:        "ok",
		Mode:          "static",
		UptimeSeconds: time.Since(serverStart).Seconds(),
		Published:     true,
		HTTP: httpHealth{
			Requests:   lat.Count,
			InFlight:   mHTTPInFlight.Value(),
			Panics:     mHTTPPanics.Value(),
			CacheHits:  mCacheHits.Value(),
			CacheMiss:  mCacheMisses.Value(),
			P50Seconds: lat.Quantile(0.50) * obs.Nanos,
			P90Seconds: lat.Quantile(0.90) * obs.Nanos,
			P99Seconds: lat.Quantile(0.99) * obs.Nanos,
		},
	}
	if s.coord != nil {
		resp.Mode = "coordinator"
		if err := s.coord.Ready(); err != nil {
			resp.Status = "starting"
			resp.Published = false
			resp.LastError = err.Error()
		}
		writeJSON(w, resp)
		return
	}
	if s.live == nil {
		resp.Rows = s.eng.Table().NumRows()
		writeJSON(w, resp)
		return
	}
	resp.Mode = "live"
	switch {
	case s.leader != nil:
		resp.Mode = "leader"
	case s.replica != nil:
		resp.Mode = "replica"
	}
	resp.Rows = s.live.Store().Rows()
	resp.Refreshes = s.live.Refreshes()
	resp.FullRefreshes = s.live.FullRefreshes()
	resp.IncrementalRefreshes = s.live.IncrementalRefreshes()
	if msg, _ := s.live.LastError(); msg != "" {
		resp.LastError = msg
	}
	if pub := s.live.Current(); pub != nil {
		resp.Epoch = pub.Epoch
	} else {
		resp.Status = "starting"
		resp.Published = false
	}
	writeJSON(w, resp)
}
