package assoc

import (
	"fmt"
	"math/rand"
	"testing"
)

// synthTxs builds a deterministic transactional dataset with planted
// co-occurrence structure so several itemset levels survive the support
// threshold.
func synthTxs(n int, seed int64) []Transaction {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]Transaction, n)
	for i := range txs {
		cls := rng.Intn(3)
		txs[i] = Transaction{
			{Attr: "u_windows", Value: fmt.Sprintf("c%d", cls)},
			{Attr: "u_opaque", Value: fmt.Sprintf("c%d", (cls+rng.Intn(2))%3)},
			{Attr: "etah", Value: fmt.Sprintf("c%d", rng.Intn(3))},
			{Attr: "eph", Value: fmt.Sprintf("c%d", cls)},
		}
		if rng.Intn(4) == 0 {
			txs[i] = append(txs[i], Item{Attr: "era", Value: fmt.Sprintf("e%d", rng.Intn(2))})
		}
	}
	return txs
}

// TestFrequentItemsetsParallelEquivalence verifies that partitioned
// support counting returns exactly the sequential itemsets: counts are
// integers, so the merge is exact at every worker count.
func TestFrequentItemsetsParallelEquivalence(t *testing.T) {
	m, err := NewMiner(synthTxs(2000, 17))
	if err != nil {
		t.Fatal(err)
	}
	base := MiningConfig{MinSupport: 0.02, MaxLen: 3}
	want, err := m.FrequentItemsets(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture mined no itemsets")
	}
	for _, p := range []int{2, 3, 8, 64} {
		cfg := base
		cfg.Parallelism = p
		got, err := m.FrequentItemsets(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d itemsets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i].Items.key() != want[i].Items.key() || got[i].Count != want[i].Count {
				t.Fatalf("parallelism %d: itemset %d = %v (%d), want %v (%d)",
					p, i, got[i].Items, got[i].Count, want[i].Items, want[i].Count)
			}
		}
	}
}

// TestParallelAprioriMatchesFPGrowth cross-checks the parallel Apriori
// against the independent FP-Growth implementation.
func TestParallelAprioriMatchesFPGrowth(t *testing.T) {
	m, err := NewMiner(synthTxs(1200, 29))
	if err != nil {
		t.Fatal(err)
	}
	apriori, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.03, MaxLen: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.FrequentItemsetsFP(MiningConfig{MinSupport: 0.03, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(apriori) != len(fp) {
		t.Fatalf("apriori mined %d itemsets, fp-growth %d", len(apriori), len(fp))
	}
	for i := range apriori {
		if apriori[i].Items.key() != fp[i].Items.key() || apriori[i].Count != fp[i].Count {
			t.Fatalf("itemset %d: apriori %v (%d) != fp %v (%d)",
				i, apriori[i].Items, apriori[i].Count, fp[i].Items, fp[i].Count)
		}
	}
}

// TestRulesFromParallelMiningEquivalence runs the full mine-then-rules
// pipeline at both ends of the parallelism range.
func TestRulesFromParallelMiningEquivalence(t *testing.T) {
	m, err := NewMiner(synthTxs(1500, 41))
	if err != nil {
		t.Fatal(err)
	}
	rcfg := RuleConfig{MinConfidence: 0.5, MinLift: 1.05, MaxConsequentLen: 1}
	seqSets, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.02, MaxLen: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqRules, err := m.Rules(seqSets, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	parSets, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.02, MaxLen: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	parRules, err := m.Rules(parSets, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRules) == 0 {
		t.Fatal("fixture mined no rules")
	}
	if len(parRules) != len(seqRules) {
		t.Fatalf("parallel mined %d rules, sequential %d", len(parRules), len(seqRules))
	}
	for i := range seqRules {
		if seqRules[i].String() != parRules[i].String() {
			t.Fatalf("rule %d diverges: %v != %v", i, parRules[i], seqRules[i])
		}
	}
}
