package assoc

import (
	"testing"
	"testing/quick"
)

func TestFPGrowthMatchesAprioriSmall(t *testing.T) {
	txs := []Transaction{
		{{Attr: "a", Value: "1"}, {Attr: "b", Value: "1"}, {Attr: "c", Value: "1"}},
		{{Attr: "a", Value: "1"}, {Attr: "b", Value: "1"}},
		{{Attr: "a", Value: "1"}, {Attr: "c", Value: "2"}},
		{{Attr: "b", Value: "1"}, {Attr: "c", Value: "1"}},
		{{Attr: "a", Value: "2"}},
	}
	m, _ := NewMiner(txs)
	cfg := MiningConfig{MinSupport: 0.2, MaxLen: 3}
	ap, err := m.FrequentItemsets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.FrequentItemsetsFP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != len(fp) {
		t.Fatalf("apriori=%d fp=%d\nAP: %v\nFP: %v", len(ap), len(fp), ap, fp)
	}
	for i := range ap {
		if ap[i].Items.key() != fp[i].Items.key() || ap[i].Count != fp[i].Count {
			t.Fatalf("mismatch at %d: %v vs %v", i, ap[i], fp[i])
		}
	}
}

func TestFPGrowthMatchesAprioriProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		txs := marketData(seed, 120)
		minSup := 0.05 + float64(sup8%20)/100 // 0.05 .. 0.24
		m, _ := NewMiner(txs)
		cfg := MiningConfig{MinSupport: minSup, MaxLen: 3}
		ap, err := m.FrequentItemsets(cfg)
		if err != nil {
			return false
		}
		fp, err := m.FrequentItemsetsFP(cfg)
		if err != nil {
			return false
		}
		if len(ap) != len(fp) {
			return false
		}
		for i := range ap {
			if ap[i].Items.key() != fp[i].Items.key() || ap[i].Count != fp[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFPGrowthMaxLen(t *testing.T) {
	m, _ := NewMiner(marketData(9, 200))
	fp, err := m.FrequentItemsetsFP(MiningConfig{MinSupport: 0.05, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fp {
		if len(f.Items) > 2 {
			t.Fatalf("itemset exceeds MaxLen: %v", f.Items)
		}
	}
}

func TestFPGrowthErrors(t *testing.T) {
	m, _ := NewMiner(marketData(10, 20))
	if _, err := m.FrequentItemsetsFP(MiningConfig{MinSupport: 0}); err == nil {
		t.Fatal("want error for zero support")
	}
	if _, err := m.FrequentItemsetsFP(MiningConfig{MinSupport: 2}); err == nil {
		t.Fatal("want error for support > 1")
	}
}

func TestFPGrowthRulesCompatible(t *testing.T) {
	// Frequent sets from FP-Growth feed the same rule generator.
	m, _ := NewMiner(marketData(11, 400))
	fp, err := m.FrequentItemsetsFP(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules(fp, DefaultRuleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules from FP-Growth itemsets")
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	txs := marketData(8, 25000)
	m, _ := NewMiner(txs)
	cfg := MiningConfig{MinSupport: 0.05, MaxLen: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FrequentItemsetsFP(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
