package assoc_test

import (
	"fmt"

	"indice/internal/assoc"
)

func ExampleMiner_Rules() {
	// Three discretized certificates: poor windows always come with high
	// heating demand.
	txs := []assoc.Transaction{
		{{Attr: "uw", Value: "High"}, {Attr: "eph", Value: "High"}},
		{{Attr: "uw", Value: "High"}, {Attr: "eph", Value: "High"}},
		{{Attr: "uw", Value: "Low"}, {Attr: "eph", Value: "Low"}},
	}
	m, _ := assoc.NewMiner(txs)
	frequent, _ := m.FrequentItemsets(assoc.MiningConfig{MinSupport: 0.5})
	rules, _ := m.Rules(frequent, assoc.RuleConfig{MinConfidence: 0.9, MaxConsequentLen: 1})
	for _, r := range rules {
		fmt.Println(r)
	}
	// Output:
	// {eph=High} -> {uw=High} (sup=0.667 conf=1.000 lift=1.50 conv=+Inf)
	// {uw=High} -> {eph=High} (sup=0.667 conf=1.000 lift=1.50 conv=+Inf)
}
