package assoc

import (
	"math"
	"sort"
)

// FP-Growth: the pattern-growth alternative to Apriori, added under the
// paper's future-work plan of integrating further analytics techniques.
// It produces exactly the same frequent itemsets (property-tested against
// Apriori) without candidate generation, and wins on dense collections
// like discretized EPC attributes.

// fpNode is one node of an FP-tree.
type fpNode struct {
	item     int // item id; -1 at the root
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-list chaining
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode // item id -> first node in the chain
	counts  map[int]int     // item id -> total count in this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: make(map[int]*fpNode)},
		headers: make(map[int]*fpNode),
		counts:  make(map[int]int),
	}
}

// insert adds a (sorted) transaction with the given count.
func (t *fpTree) insert(items []int, count int) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &fpNode{item: it, parent: cur, children: make(map[int]*fpNode)}
			cur.children[it] = child
			// Chain into the header list.
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// FrequentItemsetsFP mines the same frequent itemsets as FrequentItemsets
// using FP-Growth. The result ordering matches FrequentItemsets.
func (m *Miner) FrequentItemsetsFP(cfg MiningConfig) ([]FrequentItemset, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, errFPSupport(cfg.MinSupport)
	}
	maxLen := cfg.MaxLen
	if maxLen <= 0 {
		maxLen = 4
	}
	// Match FrequentItemsets' rounding exactly so both miners agree on
	// borderline supports.
	minCount := int(math.Ceil(cfg.MinSupport * float64(m.n)))
	if minCount < 1 {
		minCount = 1
	}

	// Intern items and count global frequencies.
	idByItem := make(map[Item]int)
	var items []Item
	counts := []int{}
	for _, tx := range m.txs {
		for _, it := range tx {
			id, ok := idByItem[it]
			if !ok {
				id = len(items)
				idByItem[it] = id
				items = append(items, it)
				counts = append(counts, 0)
			}
			counts[id]++
		}
	}
	// Frequency-descending item order (ties by item identity for
	// determinism); infrequent items are dropped up front.
	order := make([]int, 0, len(items))
	for id, c := range counts {
		if c >= minCount {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return items[order[a]].String() < items[order[b]].String()
	})
	rank := make(map[int]int, len(order))
	for r, id := range order {
		rank[id] = r
	}

	// Build the global tree.
	tree := newFPTree()
	buf := make([]int, 0, 16)
	for _, tx := range m.txs {
		buf = buf[:0]
		for _, it := range tx {
			id := idByItem[it]
			if _, ok := rank[id]; ok {
				buf = append(buf, id)
			}
		}
		sort.Slice(buf, func(a, b int) bool { return rank[buf[a]] < rank[buf[b]] })
		if len(buf) > 0 {
			tree.insert(buf, 1)
		}
	}

	var result []FrequentItemset
	var mine func(t *fpTree, suffix []int)
	mine = func(t *fpTree, suffix []int) {
		// Items in this (conditional) tree, processed in reverse rank
		// order so prefixes stay consistent.
		ids := make([]int, 0, len(t.counts))
		for id, c := range t.counts {
			if c >= minCount {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return rank[ids[a]] > rank[ids[b]] })
		for _, id := range ids {
			pattern := append(append([]int(nil), suffix...), id)
			if len(pattern) > maxLen {
				continue
			}
			// Emit the pattern.
			set := make(Itemset, len(pattern))
			for i, pid := range pattern {
				set[i] = items[pid]
			}
			sort.Slice(set, func(a, b int) bool { return less(set[a], set[b]) })
			result = append(result, FrequentItemset{
				Items:   set,
				Count:   t.counts[id],
				Support: float64(t.counts[id]) / float64(m.n),
			})
			if len(pattern) == maxLen {
				continue
			}
			// Conditional tree of the prefix paths above id.
			cond := newFPTree()
			path := make([]int, 0, 16)
			for node := t.headers[id]; node != nil; node = node.next {
				path = path[:0]
				for p := node.parent; p != nil && p.item != -1; p = p.parent {
					path = append(path, p.item)
				}
				// path is leaf→root; reverse into rank order.
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				if len(path) > 0 {
					cond.insert(path, node.count)
				}
			}
			mine(cond, pattern)
		}
	}
	mine(tree, nil)

	sort.Slice(result, func(i, j int) bool {
		if len(result[i].Items) != len(result[j].Items) {
			return len(result[i].Items) < len(result[j].Items)
		}
		if result[i].Support != result[j].Support {
			return result[i].Support > result[j].Support
		}
		return result[i].Items.key() < result[j].Items.key()
	})
	return result, nil
}

type errFPSupport float64

func (e errFPSupport) Error() string {
	return "assoc: min support out of (0,1]"
}
