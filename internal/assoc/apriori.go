// Package assoc implements the association-rule discovery of the INDICE
// analytics engine (§2.2.2): Apriori frequent-itemset mining over the
// discretized EPC attributes, rule generation, and the four quality
// indices the paper filters on — support, confidence, lift and conviction.
package assoc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"indice/internal/parallel"
)

// Item is one attribute=value pair of a transactional row.
type Item struct {
	Attr  string
	Value string
}

// String renders the item as attr=value.
func (it Item) String() string { return it.Attr + "=" + it.Value }

// Transaction is the itemset of one row. Items within a transaction must
// have distinct attributes (one value per attribute).
type Transaction []Item

// Itemset is a canonical (sorted, deduplicated) set of items.
type Itemset []Item

// key renders a canonical string key for map indexing.
func (s Itemset) key() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return strings.Join(parts, "\x00")
}

// String renders the itemset as {a=x, b=y}.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func less(a, b Item) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Value < b.Value
}

// canon sorts and deduplicates a copy of the items.
func canon(items []Item) Itemset {
	out := append(Itemset(nil), items...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	dedup := out[:0]
	for i, it := range out {
		if i > 0 && it == out[i-1] {
			continue
		}
		dedup = append(dedup, it)
	}
	return dedup
}

// FrequentItemset pairs an itemset with its support count.
type FrequentItemset struct {
	Items   Itemset
	Count   int
	Support float64
}

// MiningConfig bounds the Apriori search.
type MiningConfig struct {
	// MinSupport is the minimum itemset support in [0,1].
	MinSupport float64
	// MaxLen bounds itemset length (default 4: antecedent up to 3 items
	// plus a consequent).
	MaxLen int
	// DisablePruning turns off the anti-monotone candidate pruning; the
	// correctness-equivalent exhaustive variant exists for the ablation
	// bench only.
	DisablePruning bool
	// Parallelism bounds the worker goroutines of the support-counting
	// passes, which partition the transactions into chunks and merge the
	// per-chunk integer counts. 0 or 1 run sequentially; counts are exact,
	// so the mined itemsets are identical at any setting.
	Parallelism int
}

// Miner holds a transactional dataset ready for mining.
type Miner struct {
	txs []Itemset
	n   int
}

// NewMiner canonicalizes the transactions. Empty transactions are kept
// (they count toward N but support nothing).
func NewMiner(txs []Transaction) (*Miner, error) {
	if len(txs) == 0 {
		return nil, errors.New("assoc: no transactions")
	}
	m := &Miner{txs: make([]Itemset, len(txs)), n: len(txs)}
	for i, t := range txs {
		m.txs[i] = canon(t)
	}
	return m, nil
}

// N returns the number of transactions.
func (m *Miner) N() int { return m.n }

// FrequentItemsets runs Apriori and returns every itemset with support ≥
// cfg.MinSupport, sorted by (length, support desc, key).
func (m *Miner) FrequentItemsets(cfg MiningConfig) ([]FrequentItemset, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("assoc: min support %v out of (0,1]", cfg.MinSupport)
	}
	maxLen := cfg.MaxLen
	if maxLen <= 0 {
		maxLen = 4
	}
	minCount := int(math.Ceil(cfg.MinSupport * float64(m.n)))
	if minCount < 1 {
		minCount = 1
	}

	// L1: frequent single items, counted over transaction chunks.
	type l1Part struct {
		counts    map[string]int
		itemByKey map[string]Item
	}
	l1 := parallel.ChunkReduce(len(m.txs), cfg.Parallelism,
		l1Part{counts: make(map[string]int), itemByKey: make(map[string]Item)},
		func(start, end int) l1Part {
			p := l1Part{counts: make(map[string]int), itemByKey: make(map[string]Item)}
			for _, tx := range m.txs[start:end] {
				for _, it := range tx {
					k := it.String()
					p.counts[k]++
					p.itemByKey[k] = it
				}
			}
			return p
		},
		func(acc, part l1Part) l1Part {
			if len(acc.counts) == 0 {
				return part
			}
			for k, c := range part.counts {
				acc.counts[k] += c
				acc.itemByKey[k] = part.itemByKey[k]
			}
			return acc
		})
	counts, itemByKey := l1.counts, l1.itemByKey
	var level []Itemset
	levelCounts := make(map[string]int)
	for k, c := range counts {
		if c >= minCount {
			is := Itemset{itemByKey[k]}
			level = append(level, is)
			levelCounts[is.key()] = c
		}
	}
	sortItemsets(level)

	var result []FrequentItemset
	appendLevel := func(sets []Itemset, counts map[string]int) {
		for _, s := range sets {
			c := counts[s.key()]
			result = append(result, FrequentItemset{
				Items:   s,
				Count:   c,
				Support: float64(c) / float64(m.n),
			})
		}
	}
	appendLevel(level, levelCounts)

	for length := 2; length <= maxLen && len(level) > 0; length++ {
		var candidates []Itemset
		if cfg.DisablePruning {
			candidates = m.allCandidates(length)
		} else {
			candidates = joinAndPrune(level)
		}
		if len(candidates) == 0 {
			break
		}
		keys := make([]string, len(candidates))
		for i, c := range candidates {
			keys[i] = c.key()
		}
		// Support counting is the Apriori hot loop: transactions partition
		// into chunks, each chunk counts into its own candidate-indexed
		// slice, and the integer merges are exact regardless of chunking.
		candCounts := parallel.ChunkReduce(len(m.txs), cfg.Parallelism,
			make([]int, len(candidates)),
			func(start, end int) []int {
				part := make([]int, len(candidates))
				for _, tx := range m.txs[start:end] {
					if len(tx) < length {
						continue
					}
					for i, c := range candidates {
						if containsAll(tx, c) {
							part[i]++
						}
					}
				}
				return part
			},
			func(acc, part []int) []int {
				if len(acc) == 0 {
					return part
				}
				for i, c := range part {
					acc[i] += c
				}
				return acc
			})
		var next []Itemset
		nextCounts := make(map[string]int)
		for i, c := range candidates {
			if candCounts[i] >= minCount {
				next = append(next, c)
				nextCounts[keys[i]] = candCounts[i]
			}
		}
		sortItemsets(next)
		appendLevel(next, nextCounts)
		level = next
	}

	sort.Slice(result, func(i, j int) bool {
		if len(result[i].Items) != len(result[j].Items) {
			return len(result[i].Items) < len(result[j].Items)
		}
		if result[i].Support != result[j].Support {
			return result[i].Support > result[j].Support
		}
		return result[i].Items.key() < result[j].Items.key()
	})
	return result, nil
}

// joinAndPrune generates length k+1 candidates from the frequent level-k
// itemsets using the classic Apriori join (shared k-1 prefix) and prunes
// candidates with an infrequent k-subset (anti-monotonicity). Candidates
// pairing two values of the same attribute are impossible in one
// transaction and are dropped immediately.
func joinAndPrune(level []Itemset) []Itemset {
	freq := make(map[string]bool, len(level))
	for _, s := range level {
		freq[s.key()] = true
	}
	var out []Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			// Join condition: identical first k-1 items.
			match := true
			for x := 0; x < k-1; x++ {
				if a[x] != b[x] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			last1, last2 := a[k-1], b[k-1]
			if last1.Attr == last2.Attr {
				continue // same attribute twice: unsatisfiable
			}
			cand := append(append(Itemset(nil), a...), last2)
			sort.Slice(cand, func(x, y int) bool { return less(cand[x], cand[y]) })
			// Prune: all k-subsets must be frequent.
			ok := true
			sub := make(Itemset, k)
			for drop := 0; drop <= k; drop++ {
				sub = sub[:0]
				for x := 0; x <= k; x++ {
					if x != drop {
						sub = append(sub, cand[x])
					}
				}
				if !freq[sub.key()] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cand)
			}
		}
	}
	sortItemsets(out)
	// Deduplicate (the join can produce the same candidate twice).
	dedup := out[:0]
	var prev string
	for _, c := range out {
		k := c.key()
		if k == prev {
			continue
		}
		dedup = append(dedup, c)
		prev = k
	}
	return dedup
}

// allCandidates enumerates every length-k combination of observed items
// with distinct attributes: the unpruned ablation baseline.
func (m *Miner) allCandidates(k int) []Itemset {
	seen := make(map[string]Item)
	for _, tx := range m.txs {
		for _, it := range tx {
			seen[it.String()] = it
		}
	}
	items := make([]Item, 0, len(seen))
	for _, it := range seen {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return less(items[i], items[j]) })

	var out []Itemset
	var rec func(start int, cur Itemset)
	rec = func(start int, cur Itemset) {
		if len(cur) == k {
			out = append(out, append(Itemset(nil), cur...))
			return
		}
		for i := start; i < len(items); i++ {
			dup := false
			for _, c := range cur {
				if c.Attr == items[i].Attr {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
	return out
}

// containsAll reports whether the sorted transaction tx contains every
// item of the sorted itemset s.
func containsAll(tx, s Itemset) bool {
	i := 0
	for _, want := range s {
		for i < len(tx) && less(tx[i], want) {
			i++
		}
		if i >= len(tx) || tx[i] != want {
			return false
		}
		i++
	}
	return true
}

func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].key() < sets[j].key() })
}
