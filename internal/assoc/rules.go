package assoc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Rule is an association rule A → B with its quality indices.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	// Support is the fraction of transactions containing A ∪ B.
	Support float64
	// Confidence is P(B|A).
	Confidence float64
	// Lift is confidence / P(B); 1 means independence.
	Lift float64
	// Conviction is (1-P(B)) / (1-confidence); +Inf for exact rules.
	Conviction float64
	// Count is the absolute support count.
	Count int
}

// String renders the rule with its indices.
func (r Rule) String() string {
	return fmt.Sprintf("%s -> %s (sup=%.3f conf=%.3f lift=%.2f conv=%.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift, r.Conviction)
}

// RuleConfig filters generated rules. The paper's four indices each get a
// minimum constraint; zero values disable a constraint (except MinSupport,
// inherited from mining).
type RuleConfig struct {
	MinConfidence float64
	MinLift       float64
	MinConviction float64
	// MaxConsequentLen bounds the consequent size (default 1, the
	// template INDICE uses for readable tabular rules).
	MaxConsequentLen int
}

// DefaultRuleConfig mirrors the INDICE defaults: confidence ≥ 0.6 and
// lift ≥ 1.1 with single-item consequents.
func DefaultRuleConfig() RuleConfig {
	return RuleConfig{MinConfidence: 0.6, MinLift: 1.1, MaxConsequentLen: 1}
}

// Rules generates every rule A → B with A ∪ B frequent, A, B non-empty
// and disjoint, that satisfies the configured constraints. The frequent
// itemsets must come from FrequentItemsets on the same miner.
func (m *Miner) Rules(frequent []FrequentItemset, cfg RuleConfig) ([]Rule, error) {
	if cfg.MaxConsequentLen <= 0 {
		cfg.MaxConsequentLen = 1
	}
	supByKey := make(map[string]float64, len(frequent))
	countByKey := make(map[string]int, len(frequent))
	for _, f := range frequent {
		supByKey[f.Items.key()] = f.Support
		countByKey[f.Items.key()] = f.Count
	}
	var rules []Rule
	for _, f := range frequent {
		k := len(f.Items)
		if k < 2 {
			continue
		}
		// Enumerate non-empty proper subsets as consequents.
		total := 1 << k
		for mask := 1; mask < total-1; mask++ {
			consLen := popcount(mask)
			if consLen > cfg.MaxConsequentLen {
				continue
			}
			var ante, cons Itemset
			for b := 0; b < k; b++ {
				if mask&(1<<b) != 0 {
					cons = append(cons, f.Items[b])
				} else {
					ante = append(ante, f.Items[b])
				}
			}
			supA, okA := supByKey[ante.key()]
			supB, okB := supByKey[cons.key()]
			if !okA || !okB || supA == 0 {
				// Subsets of a frequent itemset are frequent, so this only
				// happens if the caller passed a foreign itemset list.
				continue
			}
			conf := f.Support / supA
			if conf < cfg.MinConfidence {
				continue
			}
			lift := 0.0
			if supB > 0 {
				lift = conf / supB
			}
			if cfg.MinLift > 0 && lift < cfg.MinLift {
				continue
			}
			conv := math.Inf(1)
			if conf < 1 {
				conv = (1 - supB) / (1 - conf)
			}
			if cfg.MinConviction > 0 && conv < cfg.MinConviction {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    f.Support,
				Confidence: conf,
				Lift:       lift,
				Conviction: conv,
				Count:      countByKey[f.Items.key()],
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return ruleKey(rules[i]) < ruleKey(rules[j])
	})
	return rules, nil
}

func ruleKey(r Rule) string {
	return r.Antecedent.key() + "->" + r.Consequent.key()
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// SortBy identifies a quality index for ranking.
type SortBy string

// Rule ranking keys.
const (
	BySupport    SortBy = "support"
	ByConfidence SortBy = "confidence"
	ByLift       SortBy = "lift"
	ByConviction SortBy = "conviction"
)

// TopK returns the k best rules under the given index (descending), ties
// broken deterministically. k ≤ 0 returns all rules sorted.
func TopK(rules []Rule, by SortBy, k int) []Rule {
	out := append([]Rule(nil), rules...)
	val := func(r Rule) float64 {
		switch by {
		case BySupport:
			return r.Support
		case ByConfidence:
			return r.Confidence
		case ByConviction:
			return r.Conviction
		default:
			return r.Lift
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := val(out[i]), val(out[j])
		if vi != vj {
			// NaN never occurs; +Inf conviction sorts first as intended.
			return vi > vj
		}
		return ruleKey(out[i]) < ruleKey(out[j])
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Template restricts rules by attribute position, implementing the
// INDICE rule templates ("to characterize the attributes"): a rule
// matches when its consequent attributes are all in ConsequentAttrs (if
// non-empty) and its antecedent attributes are all in AntecedentAttrs
// (if non-empty).
type Template struct {
	AntecedentAttrs []string
	ConsequentAttrs []string
}

// Match reports whether the rule satisfies the template.
func (t Template) Match(r Rule) bool {
	if len(t.ConsequentAttrs) > 0 {
		for _, it := range r.Consequent {
			if !contains(t.ConsequentAttrs, it.Attr) {
				return false
			}
		}
	}
	if len(t.AntecedentAttrs) > 0 {
		for _, it := range r.Antecedent {
			if !contains(t.AntecedentAttrs, it.Attr) {
				return false
			}
		}
	}
	return true
}

// Filter returns the rules matching the template.
func (t Template) Filter(rules []Rule) []Rule {
	var out []Rule
	for _, r := range rules {
		if t.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// FormatTable renders rules as the fixed-width tabular visualization the
// dashboard embeds.
func FormatTable(rules []Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-58s %-28s %8s %8s %8s %8s\n", "ANTECEDENT", "CONSEQUENT", "SUP", "CONF", "LIFT", "CONV")
	for _, r := range rules {
		conv := fmt.Sprintf("%8.2f", r.Conviction)
		if math.IsInf(r.Conviction, 1) {
			conv = "     inf"
		}
		fmt.Fprintf(&b, "%-58s %-28s %8.3f %8.3f %8.2f %s\n",
			r.Antecedent.String(), r.Consequent.String(), r.Support, r.Confidence, r.Lift, conv)
	}
	return b.String()
}
