package assoc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// marketData builds the classic structured basket: uw=High strongly
// implies eph=High; other attributes are noise.
func marketData(seed int64, n int) []Transaction {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]Transaction, 0, n)
	for i := 0; i < n; i++ {
		uw := "Low"
		if rng.Float64() < 0.4 {
			uw = "High"
		}
		eph := "Low"
		if uw == "High" {
			if rng.Float64() < 0.9 {
				eph = "High"
			}
		} else if rng.Float64() < 0.15 {
			eph = "High"
		}
		era := []string{"old", "mid", "new"}[rng.Intn(3)]
		txs = append(txs, Transaction{
			{Attr: "uw", Value: uw},
			{Attr: "eph", Value: eph},
			{Attr: "era", Value: era},
		})
	}
	return txs
}

func TestMinerValidation(t *testing.T) {
	if _, err := NewMiner(nil); err == nil {
		t.Fatal("want error for no transactions")
	}
	m, err := NewMiner([]Transaction{{{Attr: "a", Value: "1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestFrequentItemsetsSmall(t *testing.T) {
	txs := []Transaction{
		{{Attr: "a", Value: "1"}, {Attr: "b", Value: "1"}},
		{{Attr: "a", Value: "1"}, {Attr: "b", Value: "1"}},
		{{Attr: "a", Value: "1"}, {Attr: "b", Value: "2"}},
		{{Attr: "a", Value: "2"}, {Attr: "b", Value: "1"}},
	}
	m, _ := NewMiner(txs)
	fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bySupport := map[string]float64{}
	for _, f := range fs {
		bySupport[f.Items.String()] = f.Support
	}
	if bySupport["{a=1}"] != 0.75 {
		t.Fatalf("support(a=1) = %v", bySupport["{a=1}"])
	}
	if bySupport["{b=1}"] != 0.75 {
		t.Fatalf("support(b=1) = %v", bySupport["{b=1}"])
	}
	if bySupport["{a=1, b=1}"] != 0.5 {
		t.Fatalf("support(a=1,b=1) = %v; sets=%v", bySupport["{a=1, b=1}"], bySupport)
	}
	// a=2 (support .25) must be absent.
	if _, ok := bySupport["{a=2}"]; ok {
		t.Fatal("infrequent itemset reported")
	}
}

func TestFrequentItemsetsConfigErrors(t *testing.T) {
	m, _ := NewMiner(marketData(1, 50))
	if _, err := m.FrequentItemsets(MiningConfig{MinSupport: 0}); err == nil {
		t.Fatal("want error for zero support")
	}
	if _, err := m.FrequentItemsets(MiningConfig{MinSupport: 1.5}); err == nil {
		t.Fatal("want error for support > 1")
	}
}

func TestAntiMonotonicityProperty(t *testing.T) {
	// Every subset of a frequent itemset is frequent with at least the
	// same support.
	m, _ := NewMiner(marketData(2, 300))
	fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	sup := map[string]float64{}
	for _, f := range fs {
		sup[f.Items.key()] = f.Support
	}
	for _, f := range fs {
		if len(f.Items) < 2 {
			continue
		}
		for drop := range f.Items {
			sub := append(Itemset(nil), f.Items[:drop]...)
			sub = append(sub, f.Items[drop+1:]...)
			s, ok := sup[sub.key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v missing", sub, f.Items)
			}
			if s < f.Support-1e-12 {
				t.Fatalf("subset %v support %v < superset %v", sub, s, f.Support)
			}
		}
	}
}

func TestPrunedMatchesUnprunedProperty(t *testing.T) {
	f := func(seed int64) bool {
		txs := marketData(seed, 80)
		m, _ := NewMiner(txs)
		a, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.1, MaxLen: 3})
		if err != nil {
			return false
		}
		b, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.1, MaxLen: 3, DisablePruning: true})
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Items.key() != b[i].Items.key() || a[i].Count != b[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRulesQualityIndices(t *testing.T) {
	// Deterministic dataset with a known exact rule.
	txs := []Transaction{
		{{Attr: "a", Value: "x"}, {Attr: "b", Value: "y"}},
		{{Attr: "a", Value: "x"}, {Attr: "b", Value: "y"}},
		{{Attr: "a", Value: "x"}, {Attr: "b", Value: "y"}},
		{{Attr: "a", Value: "z"}, {Attr: "b", Value: "y"}},
		{{Attr: "a", Value: "z"}, {Attr: "b", Value: "w"}},
	}
	m, _ := NewMiner(txs)
	fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules(fs, RuleConfig{MinConfidence: 0.5, MaxConsequentLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	var axby *Rule
	for i := range rules {
		if rules[i].Antecedent.String() == "{a=x}" && rules[i].Consequent.String() == "{b=y}" {
			axby = &rules[i]
		}
	}
	if axby == nil {
		t.Fatalf("rule a=x -> b=y not found in %v", rules)
	}
	if math.Abs(axby.Support-0.6) > 1e-12 {
		t.Fatalf("support = %v", axby.Support)
	}
	if axby.Confidence != 1 {
		t.Fatalf("confidence = %v", axby.Confidence)
	}
	if math.Abs(axby.Lift-1.25) > 1e-12 { // 1 / 0.8
		t.Fatalf("lift = %v", axby.Lift)
	}
	if !math.IsInf(axby.Conviction, 1) {
		t.Fatalf("conviction = %v, want +Inf for exact rule", axby.Conviction)
	}
}

func TestRulesConstraints(t *testing.T) {
	m, _ := NewMiner(marketData(3, 500))
	fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules(fs, RuleConfig{MinConfidence: 0.7, MinLift: 1.2, MinConviction: 1.1, MaxConsequentLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules found")
	}
	for _, r := range rules {
		if r.Confidence < 0.7 || r.Lift < 1.2 {
			t.Fatalf("rule violates constraints: %v", r)
		}
		if !math.IsInf(r.Conviction, 1) && r.Conviction < 1.1 {
			t.Fatalf("conviction constraint violated: %v", r)
		}
		if len(r.Consequent) != 1 {
			t.Fatalf("consequent too long: %v", r)
		}
	}
	// The planted implication must surface.
	found := false
	for _, r := range rules {
		if strings.Contains(r.Antecedent.String(), "uw=High") &&
			strings.Contains(r.Consequent.String(), "eph=High") {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted rule missing from %v", rules)
	}
}

func TestRulesSortedByLift(t *testing.T) {
	m, _ := NewMiner(marketData(4, 400))
	fs, _ := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	rules, err := m.Rules(fs, RuleConfig{MinConfidence: 0.3, MaxConsequentLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Lift > rules[i-1].Lift+1e-12 {
			t.Fatalf("rules not sorted by lift at %d", i)
		}
	}
}

func TestTopK(t *testing.T) {
	m, _ := NewMiner(marketData(5, 400))
	fs, _ := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	rules, _ := m.Rules(fs, RuleConfig{MinConfidence: 0.2, MaxConsequentLen: 1})
	if len(rules) < 5 {
		t.Fatalf("need several rules, got %d", len(rules))
	}
	top3 := TopK(rules, ByConfidence, 3)
	if len(top3) != 3 {
		t.Fatalf("topk = %d", len(top3))
	}
	for i := 1; i < len(top3); i++ {
		if top3[i].Confidence > top3[i-1].Confidence {
			t.Fatal("topk not sorted")
		}
	}
	all := TopK(rules, BySupport, 0)
	if len(all) != len(rules) {
		t.Fatalf("k<=0 should return all")
	}
	// The input slice must not be reordered.
	for i := 1; i < len(rules); i++ {
		if rules[i].Lift > rules[i-1].Lift+1e-12 {
			t.Fatal("TopK mutated its input")
		}
	}
}

func TestTemplateFilter(t *testing.T) {
	m, _ := NewMiner(marketData(6, 400))
	fs, _ := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
	rules, _ := m.Rules(fs, RuleConfig{MinConfidence: 0.2, MaxConsequentLen: 1})
	tpl := Template{ConsequentAttrs: []string{"eph"}}
	got := tpl.Filter(rules)
	if len(got) == 0 {
		t.Fatal("template matched nothing")
	}
	for _, r := range got {
		for _, it := range r.Consequent {
			if it.Attr != "eph" {
				t.Fatalf("rule leaked through template: %v", r)
			}
		}
	}
	both := Template{AntecedentAttrs: []string{"uw"}, ConsequentAttrs: []string{"eph"}}
	for _, r := range both.Filter(rules) {
		if r.Antecedent[0].Attr != "uw" {
			t.Fatalf("antecedent template violated: %v", r)
		}
	}
}

func TestFormatTable(t *testing.T) {
	m, _ := NewMiner(marketData(7, 200))
	fs, _ := m.FrequentItemsets(MiningConfig{MinSupport: 0.1, MaxLen: 2})
	rules, _ := m.Rules(fs, RuleConfig{MinConfidence: 0.5, MaxConsequentLen: 1})
	out := FormatTable(TopK(rules, ByLift, 5))
	if !strings.Contains(out, "ANTECEDENT") || !strings.Contains(out, "LIFT") {
		t.Fatalf("table header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
		t.Fatalf("table has no rows:\n%s", out)
	}
}

func TestCanonDeduplicates(t *testing.T) {
	tx := Transaction{
		{Attr: "b", Value: "2"},
		{Attr: "a", Value: "1"},
		{Attr: "a", Value: "1"},
	}
	got := canon(tx)
	if len(got) != 2 || got[0].Attr != "a" || got[1].Attr != "b" {
		t.Fatalf("canon = %v", got)
	}
}

func TestContainsAll(t *testing.T) {
	tx := canon(Transaction{
		{Attr: "a", Value: "1"}, {Attr: "b", Value: "2"}, {Attr: "c", Value: "3"},
	})
	if !containsAll(tx, canon(Transaction{{Attr: "a", Value: "1"}, {Attr: "c", Value: "3"}})) {
		t.Fatal("subset not found")
	}
	if containsAll(tx, canon(Transaction{{Attr: "a", Value: "9"}})) {
		t.Fatal("false positive")
	}
}

func BenchmarkFrequentItemsets(b *testing.B) {
	txs := marketData(8, 25000)
	m, _ := NewMiner(txs)
	cfg := MiningConfig{MinSupport: 0.05, MaxLen: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FrequentItemsets(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrequentItemsetsNoPruning(b *testing.B) {
	txs := marketData(8, 25000)
	m, _ := NewMiner(txs)
	cfg := MiningConfig{MinSupport: 0.05, MaxLen: 3, DisablePruning: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FrequentItemsets(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRuleQualityInvariantsProperty(t *testing.T) {
	// For every generated rule A -> B over any dataset:
	//   support(A∪B) <= min(support(A), support(B))
	//   confidence = support(A∪B)/support(A) in (0, 1]
	//   lift = confidence / support(B)
	//   conviction >= 0, +Inf iff confidence == 1
	f := func(seed int64) bool {
		txs := marketData(seed, 150)
		m, _ := NewMiner(txs)
		fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.05, MaxLen: 3})
		if err != nil {
			return false
		}
		sup := map[string]float64{}
		for _, fi := range fs {
			sup[fi.Items.key()] = fi.Support
		}
		rules, err := m.Rules(fs, RuleConfig{MinConfidence: 0.1, MaxConsequentLen: 1})
		if err != nil {
			return false
		}
		for _, r := range rules {
			supA := sup[r.Antecedent.key()]
			supB := sup[r.Consequent.key()]
			if r.Support > supA+1e-12 || r.Support > supB+1e-12 {
				return false
			}
			if r.Confidence <= 0 || r.Confidence > 1+1e-12 {
				return false
			}
			if math.Abs(r.Confidence-r.Support/supA) > 1e-9 {
				return false
			}
			if math.Abs(r.Lift-r.Confidence/supB) > 1e-9 {
				return false
			}
			if math.IsInf(r.Conviction, 1) != (r.Confidence == 1) {
				return false
			}
			if !math.IsInf(r.Conviction, 1) && r.Conviction < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRulesAntecedentConsequentDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, _ := NewMiner(marketData(seed, 100))
		fs, err := m.FrequentItemsets(MiningConfig{MinSupport: 0.08, MaxLen: 3})
		if err != nil {
			return false
		}
		rules, err := m.Rules(fs, RuleConfig{MinConfidence: 0.1, MaxConsequentLen: 2})
		if err != nil {
			return false
		}
		for _, r := range rules {
			if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
				return false
			}
			seen := map[Item]bool{}
			for _, it := range r.Antecedent {
				seen[it] = true
			}
			for _, it := range r.Consequent {
				if seen[it] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
