package render

import (
	"errors"
	"fmt"
	"html"
	"strings"
)

// Page assembles SVG panels, tables and prose into a single standalone
// HTML dashboard document — the offline counterpart of the paper's folium
// page.
type Page struct {
	title    string
	sections []string
}

// NewPage starts an empty dashboard page.
func NewPage(title string) *Page {
	return &Page{title: title}
}

// AddHeading appends a section heading.
func (p *Page) AddHeading(text string) {
	p.sections = append(p.sections, "<h2>"+html.EscapeString(text)+"</h2>")
}

// AddParagraph appends explanatory prose.
func (p *Page) AddParagraph(text string) {
	p.sections = append(p.sections, "<p>"+html.EscapeString(text)+"</p>")
}

// AddSVG embeds a rendered SVG panel.
func (p *Page) AddSVG(svg string) {
	p.sections = append(p.sections, `<div class="panel">`+svg+`</div>`)
}

// AddSVGRow embeds several SVG panels side by side.
func (p *Page) AddSVGRow(svgs ...string) {
	var b strings.Builder
	b.WriteString(`<div class="row">`)
	for _, s := range svgs {
		b.WriteString(`<div class="panel">` + s + `</div>`)
	}
	b.WriteString(`</div>`)
	p.sections = append(p.sections, b.String())
}

// AddTable appends an HTML table with a header row.
func (p *Page) AddTable(headers []string, rows [][]string) error {
	if len(headers) == 0 {
		return errors.New("render: table needs headers")
	}
	var b strings.Builder
	b.WriteString("<table><thead><tr>")
	for _, h := range headers {
		b.WriteString("<th>" + html.EscapeString(h) + "</th>")
	}
	b.WriteString("</tr></thead><tbody>")
	for _, row := range rows {
		if len(row) != len(headers) {
			return fmt.Errorf("render: table row has %d cells, want %d", len(row), len(headers))
		}
		b.WriteString("<tr>")
		for _, cell := range row {
			b.WriteString("<td>" + html.EscapeString(cell) + "</td>")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</tbody></table>")
	p.sections = append(p.sections, b.String())
	return nil
}

// AddPre appends preformatted text (e.g. the rule table).
func (p *Page) AddPre(text string) {
	p.sections = append(p.sections, "<pre>"+html.EscapeString(text)+"</pre>")
}

// String serializes the complete HTML document.
func (p *Page) String() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>" + html.EscapeString(p.title) + "</title>\n<style>\n")
	b.WriteString(`body { font-family: sans-serif; margin: 24px; background: #fafafa; color: #222; }
h1 { border-bottom: 2px solid #4878a8; padding-bottom: 6px; }
h2 { margin-top: 28px; color: #2b4a6b; }
.panel { display: inline-block; background: #fff; border: 1px solid #ddd; margin: 6px; padding: 4px; }
.row { display: flex; flex-wrap: wrap; }
table { border-collapse: collapse; background: #fff; margin: 8px 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; }
th { background: #e8eef5; }
pre { background: #fff; border: 1px solid #ddd; padding: 8px; overflow-x: auto; font-size: 12px; }
`)
	b.WriteString("</style></head><body>\n")
	b.WriteString("<h1>" + html.EscapeString(p.title) + "</h1>\n")
	for _, s := range p.sections {
		b.WriteString(s)
		b.WriteString("\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
