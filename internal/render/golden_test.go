package render

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when the test runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/render -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden copy.\nIf the change is intentional, regenerate with `go test ./internal/render -update`.\ngot %d bytes, want %d bytes", name, len(got), len(want))
	}
}

// TestPageGolden pins the assembled HTML of a representative dashboard
// page, so refactors of the HTML scaffolding can't silently change the
// paper artifacts.
func TestPageGolden(t *testing.T) {
	p := NewPage("INDICE — golden dashboard")
	p.AddHeading("Energy maps")
	p.AddParagraph("Average EPH per district at city zoom.")
	svg, err := BarChart("cluster cardinalities", []string{"C0", "C1", "C2"}, []float64{120, 45, 80}, 320, 200)
	if err != nil {
		t.Fatal(err)
	}
	p.AddSVG(svg)
	if err := p.AddTable(
		[]string{"cluster", "size", "mean EPH"},
		[][]string{
			{"C0", "120", "84.2"},
			{"C1", "45", "190.7"},
			{"C2", "80", "132.0"},
		},
	); err != nil {
		t.Fatal(err)
	}
	p.AddPre("shape check: clusters separate on EPH")
	checkGolden(t, "page.golden.html", p.String())
}

// TestChartGoldens pins the SVG output of the chart primitives the paper
// figures are built from.
func TestChartGoldens(t *testing.T) {
	bar, err := BarChart("mean EPH per cluster", []string{"C0", "C1"}, []float64{84.25, 190.75}, 480, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "barchart.golden.svg", bar)

	sse, err := SSECurveChart("SSE elbow", []int{2, 3, 4, 5, 6}, []float64{900, 420, 260, 210, 190}, 4, 480, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ssecurve.golden.svg", sse)
}
