package render

import (
	"errors"
	"fmt"
	"math"

	"indice/internal/stats"
)

// HistogramChart renders a frequency-distribution bar chart of a numeric
// attribute, the core element of the INDICE distribution panel.
func HistogramChart(title string, h *stats.Histogram, w, height int) (string, error) {
	if h == nil || len(h.Counts) == 0 {
		return "", errors.New("render: empty histogram")
	}
	c := NewCanvas(w, height)
	c.Rect(0, 0, float64(w), float64(height), "#ffffff", "#cccccc", 1)
	const (
		left   = 46.0
		bottom = 34.0
		top    = 30.0
		right  = 12.0
	)
	plotW := float64(w) - left - right
	plotH := float64(height) - top - bottom
	maxC := float64(h.MaxCount())
	if maxC == 0 {
		maxC = 1
	}
	n := len(h.Counts)
	barW := plotW / float64(n)
	for i, cnt := range h.Counts {
		bh := plotH * float64(cnt) / maxC
		x := left + float64(i)*barW
		y := top + plotH - bh
		c.Rect(x+1, y, barW-2, bh, "#4878a8", "#2b4a6b", 0.5)
	}
	// Axes.
	c.Line(left, top, left, top+plotH, "#333333", 1)
	c.Line(left, top+plotH, left+plotW, top+plotH, "#333333", 1)
	// X labels: min, mid, max edges.
	c.Text(left, float64(height)-14, trimNum(h.Edges[0]), 9, "#333333", AnchorMiddle)
	c.Text(left+plotW/2, float64(height)-14, trimNum(h.Edges[n/2]), 9, "#333333", AnchorMiddle)
	c.Text(left+plotW, float64(height)-14, trimNum(h.Edges[n]), 9, "#333333", AnchorMiddle)
	// Y labels: 0 and max.
	c.Text(left-4, top+plotH, "0", 9, "#333333", AnchorEnd)
	c.Text(left-4, top+10, fmt.Sprintf("%d", h.MaxCount()), 9, "#333333", AnchorEnd)
	c.Title(title)
	return c.String(), nil
}

// BarChart renders a categorical frequency chart (used for cluster
// populations and top-k category panels).
func BarChart(title string, labels []string, values []float64, w, height int) (string, error) {
	if len(labels) == 0 || len(labels) != len(values) {
		return "", errors.New("render: bar chart needs matching labels and values")
	}
	c := NewCanvas(w, height)
	c.Rect(0, 0, float64(w), float64(height), "#ffffff", "#cccccc", 1)
	const (
		left   = 46.0
		bottom = 40.0
		top    = 30.0
		right  = 12.0
	)
	plotW := float64(w) - left - right
	plotH := float64(height) - top - bottom
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	n := len(values)
	barW := plotW / float64(n)
	for i, v := range values {
		bh := plotH * v / maxV
		if bh < 0 {
			bh = 0
		}
		x := left + float64(i)*barW
		y := top + plotH - bh
		fill := EnergyRamp.At(float64(i) / math.Max(1, float64(n-1))).Hex()
		c.Rect(x+2, y, barW-4, bh, fill, "#333333", 0.5)
		c.Text(x+barW/2, top+plotH+14, labels[i], 9, "#333333", AnchorMiddle)
		c.Text(x+barW/2, y-3, trimNum(v), 8, "#333333", AnchorMiddle)
	}
	c.Line(left, top, left, top+plotH, "#333333", 1)
	c.Line(left, top+plotH, left+plotW, top+plotH, "#333333", 1)
	c.Title(title)
	return c.String(), nil
}

// CorrelationMatrixPlot renders the Figure 3 panel: a grid of squares, one
// per attribute pair, where the gray level encodes the absolute Pearson
// coefficient (dark = strong correlation, light = weak).
func CorrelationMatrixPlot(title string, m *stats.CorrelationMatrix, w int) (string, error) {
	if m == nil || len(m.Names) == 0 {
		return "", errors.New("render: empty correlation matrix")
	}
	k := len(m.Names)
	const (
		labelBand = 110.0
		top       = 30.0
	)
	cell := (float64(w) - labelBand - 16) / float64(k)
	height := int(top + labelBand + cell*float64(k) + 16)
	c := NewCanvas(w, height)
	c.Rect(0, 0, float64(w), float64(height), "#ffffff", "#cccccc", 1)
	x0 := labelBand
	y0 := top + labelBand
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := math.Abs(m.Coef[i][j])
			fill := GrayRamp.At(v).Hex()
			x := x0 + float64(j)*cell
			y := y0 + float64(i)*cell
			c.Rect(x, y, cell-1, cell-1, fill, "#bbbbbb", 0.5)
			// Numeric annotation, readable on both light and dark cells.
			txt := "#222222"
			if v > 0.55 {
				txt = "#eeeeee"
			}
			c.Text(x+cell/2, y+cell/2+3, fmt.Sprintf("%.2f", m.Coef[i][j]), math.Min(11, cell/4), txt, AnchorMiddle)
		}
	}
	for i, name := range m.Names {
		// Row labels on the left, column labels angled on top.
		c.Text(x0-6, y0+float64(i)*cell+cell/2+3, name, 10, "#222222", AnchorEnd)
		cx := x0 + float64(i)*cell + cell/2
		fmt.Fprintf(&c.b,
			`<text x="%.2f" y="%.2f" font-size="10" font-family="sans-serif" fill="#222222" text-anchor="start" transform="rotate(-60 %.2f %.2f)">%s</text>`+"\n",
			cx, y0-8, cx, y0-8, escText(name))
	}
	c.Title(title)
	return c.String(), nil
}

// SSECurveChart renders the K-selection elbow plot of the analytics engine.
func SSECurveChart(title string, ks []int, sses []float64, chosenK, w, height int) (string, error) {
	if len(ks) == 0 || len(ks) != len(sses) {
		return "", errors.New("render: SSE curve needs matching ks and values")
	}
	c := NewCanvas(w, height)
	c.Rect(0, 0, float64(w), float64(height), "#ffffff", "#cccccc", 1)
	const (
		left   = 56.0
		bottom = 34.0
		top    = 30.0
		right  = 14.0
	)
	plotW := float64(w) - left - right
	plotH := float64(height) - top - bottom
	maxS := 0.0
	for _, s := range sses {
		if s > maxS {
			maxS = s
		}
	}
	if maxS == 0 {
		maxS = 1
	}
	px := func(i int) float64 {
		if len(ks) == 1 {
			return left + plotW/2
		}
		return left + plotW*float64(i)/float64(len(ks)-1)
	}
	py := func(s float64) float64 { return top + plotH*(1-s/maxS) }
	for i := 1; i < len(ks); i++ {
		c.Line(px(i-1), py(sses[i-1]), px(i), py(sses[i]), "#4878a8", 2)
	}
	for i, k := range ks {
		fill := "#4878a8"
		r := 3.5
		if k == chosenK {
			fill = "#d92b1c"
			r = 5.5
		}
		c.Circle(px(i), py(sses[i]), r, fill, "#222222", 0.8, 1)
		c.Text(px(i), top+plotH+14, fmt.Sprintf("%d", k), 9, "#333333", AnchorMiddle)
	}
	c.Line(left, top, left, top+plotH, "#333333", 1)
	c.Line(left, top+plotH, left+plotW, top+plotH, "#333333", 1)
	c.Text(left-6, top+10, trimNum(maxS), 9, "#333333", AnchorEnd)
	c.Text(left-6, top+plotH, "0", 9, "#333333", AnchorEnd)
	c.Title(title)
	return c.String(), nil
}

// BoxplotChart renders the graphic boxplot of the univariate outlier
// panel: box at the quartiles, whiskers at the Tukey fences, the values
// beyond them drawn individually as the paper describes.
func BoxplotChart(title string, xs []float64, w, height int) (string, error) {
	d, err := stats.Describe(xs)
	if err != nil {
		return "", fmt.Errorf("render: boxplot: %w", err)
	}
	f, err := stats.Fences(xs, 1.5)
	if err != nil {
		return "", fmt.Errorf("render: boxplot: %w", err)
	}
	c := NewCanvas(w, height)
	c.Rect(0, 0, float64(w), float64(height), "#ffffff", "#cccccc", 1)
	const (
		left  = 30.0
		right = 16.0
	)
	plotW := float64(w) - left - right
	lo := math.Min(d.Min, f.Lower)
	hi := math.Max(d.Max, f.Upper)
	if hi == lo {
		hi = lo + 1
	}
	px := func(v float64) float64 { return left + plotW*(v-lo)/(hi-lo) }
	midY := float64(height)/2 + 8
	boxH := 36.0
	// Whiskers clamp to the data range.
	wLo := math.Max(f.Lower, d.Min)
	wHi := math.Min(f.Upper, d.Max)
	c.Line(px(wLo), midY, px(f.Q1), midY, "#333333", 1.5)
	c.Line(px(f.Q3), midY, px(wHi), midY, "#333333", 1.5)
	c.Line(px(wLo), midY-10, px(wLo), midY+10, "#333333", 1.5)
	c.Line(px(wHi), midY-10, px(wHi), midY+10, "#333333", 1.5)
	c.Rect(px(f.Q1), midY-boxH/2, px(f.Q3)-px(f.Q1), boxH, "#9dbfdd", "#333333", 1.5)
	c.Line(px(d.Median), midY-boxH/2, px(d.Median), midY+boxH/2, "#d92b1c", 2)
	// Individual outliers.
	for _, v := range stats.Clean(xs) {
		if v < f.Lower || v > f.Upper {
			c.Circle(px(v), midY, 3, "#d92b1c", "#333333", 0.6, 0.9)
		}
	}
	c.Text(px(wLo), midY+boxH/2+16, trimNum(wLo), 9, "#333333", AnchorMiddle)
	c.Text(px(wHi), midY+boxH/2+16, trimNum(wHi), 9, "#333333", AnchorMiddle)
	c.Text(px(d.Median), midY-boxH/2-6, trimNum(d.Median), 9, "#333333", AnchorMiddle)
	c.Title(title)
	return c.String(), nil
}
