package render

import (
	"errors"
	"fmt"
	"math"

	"indice/internal/cluster"
)

// DendrogramChart renders an agglomerative-clustering dendrogram: leaves
// along the bottom, merge heights on the vertical axis. Supports the
// hierarchical-clustering extension of the energy-scientist profile; for
// readability the caller should pass a sampled dendrogram (≲ 100 leaves).
func DendrogramChart(title string, dg *cluster.Dendrogram, w, h int) (string, error) {
	if dg == nil || dg.N == 0 {
		return "", errors.New("render: empty dendrogram")
	}
	if dg.N > 512 {
		return "", fmt.Errorf("render: dendrogram with %d leaves is unreadable; sample first", dg.N)
	}
	c := NewCanvas(w, h)
	c.Rect(0, 0, float64(w), float64(h), "#ffffff", "#cccccc", 1)
	const (
		left   = 40.0
		right  = 14.0
		top    = 30.0
		bottom = 24.0
	)
	plotW := float64(w) - left - right
	plotH := float64(h) - top - bottom

	// Leaf ordering: walk the merge tree so subtrees stay contiguous.
	children := make(map[int][2]int, len(dg.Merges))
	for _, m := range dg.Merges {
		children[m.Into] = [2]int{m.A, m.B}
	}
	var order []int
	var walk func(node int)
	walk = func(node int) {
		ch, ok := children[node]
		if !ok {
			order = append(order, node)
			return
		}
		walk(ch[0])
		walk(ch[1])
	}
	if len(dg.Merges) > 0 {
		walk(dg.Merges[len(dg.Merges)-1].Into)
	} else {
		order = []int{0}
	}
	// Any leaves disconnected from the root (shouldn't happen with a full
	// dendrogram) are appended for safety.
	seen := make(map[int]bool, len(order))
	for _, l := range order {
		seen[l] = true
	}
	for i := 0; i < dg.N; i++ {
		if !seen[i] {
			order = append(order, i)
		}
	}

	maxH := 1e-12
	for _, m := range dg.Merges {
		if m.Height > maxH {
			maxH = m.Height
		}
	}
	// Pixel positions: x per cluster id, y per height.
	xAt := make(map[int]float64, dg.N+len(dg.Merges))
	yAt := make(map[int]float64, dg.N+len(dg.Merges))
	for i, leaf := range order {
		x := left + plotW*(float64(i)+0.5)/float64(len(order))
		xAt[leaf] = x
		yAt[leaf] = top + plotH
	}
	py := func(height float64) float64 {
		return top + plotH*(1-height/maxH)
	}
	for _, m := range dg.Merges {
		xa, xb := xAt[m.A], xAt[m.B]
		ya, yb := yAt[m.A], yAt[m.B]
		y := py(m.Height)
		// Classic dendrogram bracket: two risers and a crossbar.
		c.Line(xa, ya, xa, y, "#4878a8", 1.2)
		c.Line(xb, yb, xb, y, "#4878a8", 1.2)
		c.Line(xa, y, xb, y, "#4878a8", 1.2)
		xAt[m.Into] = (xa + xb) / 2
		yAt[m.Into] = y
	}
	// Axis with the max height label.
	c.Line(left, top, left, top+plotH, "#333333", 1)
	c.Text(left-4, top+10, trimNum(maxH), 9, "#333333", AnchorEnd)
	c.Text(left-4, top+plotH, "0", 9, "#333333", AnchorEnd)
	// Leaf ticks (indices) when few enough to read.
	if len(order) <= 40 {
		for _, leaf := range order {
			c.Text(xAt[leaf], float64(h)-8, fmt.Sprintf("%d", leaf), 8, "#333333", AnchorMiddle)
		}
	}
	c.Title(title)
	if math.IsInf(maxH, 0) {
		return "", errors.New("render: non-finite merge height")
	}
	return c.String(), nil
}
