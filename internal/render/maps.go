package render

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"indice/internal/geo"
)

// Projection maps geographic coordinates to canvas pixels with a uniform
// scale and a margin. North is up.
type Projection struct {
	bounds geo.Bounds
	w, h   float64
	margin float64
	scale  float64
}

// NewProjection fits the bounds into a w×h canvas with the given margin.
func NewProjection(b geo.Bounds, w, h int, margin float64) (*Projection, error) {
	if b.IsEmpty() {
		return nil, errors.New("render: empty bounds")
	}
	latSpan := b.MaxLat - b.MinLat
	lonSpan := b.MaxLon - b.MinLon
	if latSpan <= 0 && lonSpan <= 0 {
		return nil, errors.New("render: degenerate bounds")
	}
	p := &Projection{bounds: b, w: float64(w), h: float64(h), margin: margin}
	innerW := p.w - 2*margin
	innerH := p.h - 2*margin
	sx, sy := math.Inf(1), math.Inf(1)
	if lonSpan > 0 {
		sx = innerW / lonSpan
	}
	if latSpan > 0 {
		sy = innerH / latSpan
	}
	p.scale = math.Min(sx, sy)
	if math.IsInf(p.scale, 1) || p.scale <= 0 {
		return nil, errors.New("render: cannot compute scale")
	}
	return p, nil
}

// Pixel projects a point.
func (p *Projection) Pixel(pt geo.Point) (x, y float64) {
	x = p.margin + (pt.Lon-p.bounds.MinLon)*p.scale
	y = p.h - p.margin - (pt.Lat-p.bounds.MinLat)*p.scale
	return x, y
}

// normalizer rescales raw values to [0,1] for the color ramp, robust to
// outliers by clipping at the 2nd and 98th percentile.
type normalizer struct {
	lo, hi float64
}

func newNormalizer(vals []float64) normalizer {
	fin := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			fin = append(fin, v)
		}
	}
	if len(fin) == 0 {
		return normalizer{0, 1}
	}
	sort.Float64s(fin)
	loIdx := int(0.02 * float64(len(fin)-1))
	hiIdx := int(0.98 * float64(len(fin)-1))
	n := normalizer{fin[loIdx], fin[hiIdx]}
	if n.lo == n.hi {
		n.hi = n.lo + 1
	}
	return n
}

func (n normalizer) at(v float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	t := (v - n.lo) / (n.hi - n.lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// ZoneValue is one colored area of a choropleth map.
type ZoneValue struct {
	Zone geo.Zone
	// Value is the average of the displayed attribute over the zone's
	// certificates; NaN renders as "no data" gray.
	Value float64
	Count int
}

// Choropleth renders the choropleth energy map: "each area is colored
// according to the average value of the considered variable".
func Choropleth(title string, zones []ZoneValue, bounds geo.Bounds, w, h int) (string, error) {
	proj, err := NewProjection(bounds, w, h, 28)
	if err != nil {
		return "", fmt.Errorf("render: choropleth: %w", err)
	}
	vals := make([]float64, len(zones))
	for i, z := range zones {
		vals[i] = z.Value
	}
	norm := newNormalizer(vals)
	c := NewCanvas(w, h)
	c.Rect(0, 0, float64(w), float64(h), "#ffffff", "#cccccc", 1)
	for _, z := range zones {
		pts := make([][2]float64, len(z.Zone.Ring))
		for i, v := range z.Zone.Ring {
			x, y := proj.Pixel(v)
			pts[i] = [2]float64{x, y}
		}
		fill := EnergyRamp.At(norm.at(z.Value)).Hex()
		c.Polygon(pts, fill, "#444444", 1, 0.85)
		// Zone label at the ring centroid.
		cx, cy := ringCentroid(pts)
		c.Text(cx, cy, z.Zone.Name, 9, "#222222", AnchorMiddle)
		if !math.IsNaN(z.Value) {
			c.Text(cx, cy+11, fmt.Sprintf("%.1f (n=%d)", z.Value, z.Count), 8, "#333333", AnchorMiddle)
		}
	}
	c.Title(title)
	drawRampLegend(c, norm)
	return c.String(), nil
}

// PointValue is one marker of a scatter map.
type PointValue struct {
	Point geo.Point
	Value float64
}

// ScatterMap renders the scatter energy map: "a point and its
// corresponding value for each EPC contained in the selected area".
func ScatterMap(title string, pts []PointValue, bounds geo.Bounds, w, h int) (string, error) {
	proj, err := NewProjection(bounds, w, h, 28)
	if err != nil {
		return "", fmt.Errorf("render: scatter map: %w", err)
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	norm := newNormalizer(vals)
	c := NewCanvas(w, h)
	c.Rect(0, 0, float64(w), float64(h), "#ffffff", "#cccccc", 1)
	for _, p := range pts {
		x, y := proj.Pixel(p.Point)
		c.Circle(x, y, 2.4, EnergyRamp.At(norm.at(p.Value)).Hex(), "none", 0, 0.8)
	}
	c.Title(title)
	drawRampLegend(c, norm)
	return c.String(), nil
}

// Marker is one aggregated marker of a cluster-marker map.
type Marker struct {
	Center geo.Point
	// Count is the cluster cardinality, shown inside the marker and
	// driving its size.
	Count int
	// Value is the average of the independent response variable over the
	// aggregated certificates, driving the marker color.
	Value float64
	// Label optionally annotates the marker (e.g. the zone name).
	Label string
}

// ClusterMarkerMap renders the paper's cluster-marker map: dynamic markers
// whose size and inner label encode the cluster cardinality and whose
// color encodes the average response value, solving the multi-variable
// representation problem at coarse zoom.
func ClusterMarkerMap(title string, markers []Marker, bounds geo.Bounds, w, h int) (string, error) {
	proj, err := NewProjection(bounds, w, h, 36)
	if err != nil {
		return "", fmt.Errorf("render: cluster-marker map: %w", err)
	}
	vals := make([]float64, len(markers))
	maxCount := 1
	for i, m := range markers {
		vals[i] = m.Value
		if m.Count > maxCount {
			maxCount = m.Count
		}
	}
	norm := newNormalizer(vals)
	c := NewCanvas(w, h)
	c.Rect(0, 0, float64(w), float64(h), "#ffffff", "#cccccc", 1)
	for _, m := range markers {
		x, y := proj.Pixel(m.Center)
		// Radius grows with sqrt(cardinality) for area-proportional size.
		r := 10 + 26*math.Sqrt(float64(m.Count)/float64(maxCount))
		fill := EnergyRamp.At(norm.at(m.Value)).Hex()
		c.Circle(x, y, r, fill, "#333333", 1.5, 0.85)
		c.Text(x, y+4, fmt.Sprintf("%d", m.Count), math.Max(10, r/2), "#ffffff", AnchorMiddle)
		if m.Label != "" {
			c.Text(x, y+r+12, m.Label, 9, "#222222", AnchorMiddle)
		}
	}
	c.Title(title)
	drawRampLegend(c, norm)
	return c.String(), nil
}

// drawRampLegend draws the horizontal color legend at the bottom left.
func drawRampLegend(c *Canvas, norm normalizer) {
	const (
		x0    = 12.0
		width = 120.0
		bar   = 10.0
	)
	y := float64(c.H) - 24
	steps := 24
	for i := 0; i < steps; i++ {
		t := float64(i) / float64(steps-1)
		c.Rect(x0+t*width, y, width/float64(steps)+1, bar, EnergyRamp.At(t).Hex(), "none", 0)
	}
	c.Text(x0, y+bar+11, trimNum(norm.lo), 9, "#333333", AnchorStart)
	c.Text(x0+width, y+bar+11, trimNum(norm.hi), 9, "#333333", AnchorEnd)
}

func trimNum(v float64) string {
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func ringCentroid(pts [][2]float64) (float64, float64) {
	var sx, sy float64
	if len(pts) == 0 {
		return 0, 0
	}
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
	}
	n := float64(len(pts))
	return sx / n, sy / n
}
