package render

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"indice/internal/cluster"
	"indice/internal/geo"
	"indice/internal/stats"
)

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(200, 100)
	c.Rect(1, 2, 3, 4, "#fff", "#000", 1)
	c.Circle(10, 10, 5, "red", "none", 0, 0.5)
	c.Line(0, 0, 10, 10, "blue", 2)
	c.Polygon([][2]float64{{0, 0}, {10, 0}, {5, 8}}, "green", "black", 1, 1)
	c.Text(5, 5, "hello <world> & \"quotes\"", 10, "#333", AnchorMiddle)
	c.Title("My Chart")
	out := c.String()
	for _, want := range []string{"<svg", "<rect", "<circle", "<line", "<polygon", "<text", "hello &lt;world&gt; &amp;"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("malformed SVG document")
	}
}

func TestCanvasDefaultSize(t *testing.T) {
	c := NewCanvas(0, -5)
	if c.W <= 0 || c.H <= 0 {
		t.Fatalf("size = %dx%d", c.W, c.H)
	}
}

func TestRampInterpolation(t *testing.T) {
	r := Ramp{{0, 0, 0}, {100, 100, 100}}
	if got := r.At(0); got != (RGB{0, 0, 0}) {
		t.Fatalf("At(0) = %+v", got)
	}
	if got := r.At(1); got != (RGB{100, 100, 100}) {
		t.Fatalf("At(1) = %+v", got)
	}
	if got := r.At(0.5); got != (RGB{50, 50, 50}) {
		t.Fatalf("At(0.5) = %+v", got)
	}
	// Clamping and NaN.
	if got := r.At(-3); got != (RGB{0, 0, 0}) {
		t.Fatalf("At(-3) = %+v", got)
	}
	if got := r.At(9); got != (RGB{100, 100, 100}) {
		t.Fatalf("At(9) = %+v", got)
	}
	if got := r.At(math.NaN()); got != (RGB{160, 160, 160}) {
		t.Fatalf("At(NaN) = %+v", got)
	}
	if (Ramp{}).At(0.5) != (RGB{128, 128, 128}) {
		t.Fatal("empty ramp fallback wrong")
	}
}

func TestRampMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		ta := float64(a) / 255
		tb := float64(b) / 255
		if ta > tb {
			ta, tb = tb, ta
		}
		// GrayRamp darkens monotonically.
		ca, cb := GrayRamp.At(ta), GrayRamp.At(tb)
		return ca.R >= cb.R && ca.G >= cb.G && ca.B >= cb.B
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRGBHex(t *testing.T) {
	if got := (RGB{255, 0, 16}).Hex(); got != "#ff0010" {
		t.Fatalf("Hex = %q", got)
	}
}

func TestProjection(t *testing.T) {
	b := geo.Bounds{MinLat: 45, MinLon: 7, MaxLat: 46, MaxLon: 8}
	p, err := NewProjection(b, 400, 400, 20)
	if err != nil {
		t.Fatal(err)
	}
	// North is up: higher latitude means smaller y.
	_, ySouth := p.Pixel(geo.Point{Lat: 45, Lon: 7.5})
	_, yNorth := p.Pixel(geo.Point{Lat: 46, Lon: 7.5})
	if yNorth >= ySouth {
		t.Fatalf("north not up: %v vs %v", yNorth, ySouth)
	}
	xW, _ := p.Pixel(geo.Point{Lat: 45.5, Lon: 7})
	xE, _ := p.Pixel(geo.Point{Lat: 45.5, Lon: 8})
	if xE <= xW {
		t.Fatalf("east not right: %v vs %v", xE, xW)
	}
	// Corners stay inside the margin.
	if xW < 19.99 {
		t.Fatalf("margin violated: %v", xW)
	}
	if _, err := NewProjection(geo.EmptyBounds(), 100, 100, 5); err == nil {
		t.Fatal("want error for empty bounds")
	}
}

func zoneSquare(id string, lo, hi float64) geo.Zone {
	return geo.Zone{
		ID:    id,
		Name:  id,
		Level: geo.LevelDistrict,
		Ring: geo.Polygon{
			{Lat: lo, Lon: lo}, {Lat: lo, Lon: hi}, {Lat: hi, Lon: hi}, {Lat: hi, Lon: lo},
		},
	}
}

func TestChoropleth(t *testing.T) {
	zones := []ZoneValue{
		{Zone: zoneSquare("A", 0, 1), Value: 80, Count: 10},
		{Zone: zoneSquare("B", 1, 2), Value: 200, Count: 4},
		{Zone: zoneSquare("C", 2, 3), Value: math.NaN(), Count: 0},
	}
	svg, err := Choropleth("EPH by district", zones, geo.Bounds{MinLat: 0, MinLon: 0, MaxLat: 3, MaxLon: 3}, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<polygon") != 3 {
		t.Fatalf("polygons = %d", strings.Count(svg, "<polygon"))
	}
	if !strings.Contains(svg, "EPH by district") {
		t.Fatal("title missing")
	}
	if !strings.Contains(svg, "n=10") {
		t.Fatal("zone count annotation missing")
	}
}

func TestScatterMap(t *testing.T) {
	pts := []PointValue{
		{Point: geo.Point{Lat: 0.2, Lon: 0.3}, Value: 50},
		{Point: geo.Point{Lat: 0.8, Lon: 0.9}, Value: 300},
	}
	svg, err := ScatterMap("units", pts, geo.Bounds{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}, 400, 400)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<circle") < 2 {
		t.Fatal("points missing")
	}
}

func TestClusterMarkerMap(t *testing.T) {
	markers := []Marker{
		{Center: geo.Point{Lat: 0.25, Lon: 0.25}, Count: 120, Value: 90, Label: "D1"},
		{Center: geo.Point{Lat: 0.75, Lon: 0.75}, Count: 12, Value: 210, Label: "D2"},
	}
	svg, err := ClusterMarkerMap("clusters", markers, geo.Bounds{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}, 400, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Cardinality labels inside the markers.
	if !strings.Contains(svg, ">120<") || !strings.Contains(svg, ">12<") {
		t.Fatal("cardinality labels missing")
	}
	if !strings.Contains(svg, ">D1<") {
		t.Fatal("zone label missing")
	}
	// The larger cluster must have the larger radius.
	big := extractRadius(t, svg, ">120<")
	small := extractRadius(t, svg, ">12<")
	if big <= small {
		t.Fatalf("marker sizes: big=%v small=%v", big, small)
	}
}

// extractRadius finds the circle radius preceding the given label text.
func extractRadius(t *testing.T, svg, label string) float64 {
	t.Helper()
	idx := strings.Index(svg, label)
	if idx < 0 {
		t.Fatalf("label %q not found", label)
	}
	head := svg[:idx]
	ci := strings.LastIndex(head, "<circle")
	if ci < 0 {
		t.Fatalf("no circle before %q", label)
	}
	seg := head[ci:]
	ri := strings.Index(seg, ` r="`)
	if ri < 0 {
		t.Fatal("no radius attr")
	}
	rest := seg[ri+4:]
	end := strings.IndexByte(rest, '"')
	if end < 0 {
		t.Fatal("unterminated radius attr")
	}
	r, err := strconv.ParseFloat(rest[:end], 64)
	if err != nil {
		t.Fatalf("parse radius: %v", err)
	}
	return r
}

func TestHistogramChart(t *testing.T) {
	h, err := stats.NewHistogram([]float64{1, 2, 2, 3, 3, 3, 4, 4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := HistogramChart("EPH distribution", h, 420, 260)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<rect") < 6 { // 5 bars + background
		t.Fatalf("bars = %d", strings.Count(svg, "<rect"))
	}
	if _, err := HistogramChart("x", nil, 100, 100); err == nil {
		t.Fatal("want error for nil histogram")
	}
}

func TestBarChart(t *testing.T) {
	svg, err := BarChart("clusters", []string{"C0", "C1", "C2"}, []float64{120, 80, 44}, 420, 260)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C0", "C1", "C2"} {
		if !strings.Contains(svg, want) {
			t.Errorf("label %q missing", want)
		}
	}
	if _, err := BarChart("x", []string{"a"}, []float64{1, 2}, 100, 100); err == nil {
		t.Fatal("want error for mismatched inputs")
	}
}

func TestCorrelationMatrixPlot(t *testing.T) {
	m, err := stats.NewCorrelationMatrix(
		[]string{"sv", "uo", "uw"},
		[][]float64{{1, 2, 3, 4}, {2, 1, 4, 3}, {0.5, 2.5, 1.5, 3.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := CorrelationMatrixPlot("Figure 3", m, 480)
	if err != nil {
		t.Fatal(err)
	}
	// 9 cells + background.
	if strings.Count(svg, "<rect") < 10 {
		t.Fatalf("cells = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "1.00") {
		t.Fatal("diagonal annotation missing")
	}
	for _, n := range m.Names {
		if !strings.Contains(svg, n) {
			t.Errorf("label %q missing", n)
		}
	}
	if _, err := CorrelationMatrixPlot("x", nil, 100); err == nil {
		t.Fatal("want error for nil matrix")
	}
}

func TestSSECurveChart(t *testing.T) {
	svg, err := SSECurveChart("elbow", []int{2, 3, 4, 5}, []float64{100, 60, 30, 25}, 4, 420, 260)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "#d92b1c") {
		t.Fatal("chosen K not highlighted")
	}
	if _, err := SSECurveChart("x", []int{1}, []float64{1, 2}, 1, 100, 100); err == nil {
		t.Fatal("want error for mismatched inputs")
	}
}

func TestBoxplotChart(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 50}
	svg, err := BoxplotChart("u_opaque", xs, 420, 160)
	if err != nil {
		t.Fatal(err)
	}
	// The gross outlier renders as an individual red point.
	if !strings.Contains(svg, "#d92b1c") {
		t.Fatal("outlier markers missing")
	}
	if _, err := BoxplotChart("x", nil, 100, 100); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestPageAssembly(t *testing.T) {
	p := NewPage("INDICE dashboard <test>")
	p.AddHeading("Maps & stats")
	p.AddParagraph("District-level view.")
	p.AddSVG("<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>")
	p.AddSVGRow("<svg a=\"1\"></svg>", "<svg b=\"2\"></svg>")
	if err := p.AddTable([]string{"attr", "mean"}, [][]string{{"eph", "132.4"}}); err != nil {
		t.Fatal(err)
	}
	p.AddPre("A -> B (lift=2)")
	out := p.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "INDICE dashboard &lt;test&gt;", "<h2>Maps &amp; stats</h2>",
		"<table>", "<pre>", "class=\"row\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if err := p.AddTable(nil, nil); err == nil {
		t.Fatal("want error for empty headers")
	}
	if err := p.AddTable([]string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func BenchmarkScatterMap25k(b *testing.B) {
	pts := make([]PointValue, 25000)
	for i := range pts {
		pts[i] = PointValue{
			Point: geo.Point{Lat: float64(i%500) / 500, Lon: float64(i%499) / 499},
			Value: float64(i % 300),
		}
	}
	bounds := geo.Bounds{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScatterMap("bench", pts, bounds, 800, 600); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDendrogramChart(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}, {20, 0}}
	dg, err := cluster.Hierarchical(pts, cluster.AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := DendrogramChart("dendrogram", dg, 480, 320)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") {
		t.Fatal("no svg output")
	}
	// Each of the n-1 merges draws three segments, plus the axis.
	if got := strings.Count(svg, "<line"); got < 3*(len(pts)-1)+1 {
		t.Fatalf("lines = %d", got)
	}
	// Leaf ticks rendered for small dendrograms.
	for i := 0; i < len(pts); i++ {
		if !strings.Contains(svg, ">"+strconv.Itoa(i)+"<") {
			t.Fatalf("leaf tick %d missing", i)
		}
	}
	if _, err := DendrogramChart("x", nil, 100, 100); err == nil {
		t.Fatal("want error for nil dendrogram")
	}
}

func TestDendrogramChartTooLarge(t *testing.T) {
	pts := make([][]float64, 600)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	dg, err := cluster.Hierarchical(pts, cluster.SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DendrogramChart("x", dg, 400, 300); err == nil {
		t.Fatal("want error for oversized dendrogram")
	}
}
