// Package render implements the data and knowledge visualization tier of
// INDICE (§2.3): an SVG canvas with no external dependencies, the three
// energy maps (choropleth, scatter, cluster-marker), frequency
// distribution charts, the grayscale correlation-matrix plot, and the HTML
// dashboard assembly. The paper's folium/Leaflet interactivity is replaced
// by per-zoom-level static generation bundled into a single offline HTML
// page (see DESIGN.md).
package render

import (
	"fmt"
	"math"
	"strings"
)

// Canvas accumulates SVG elements and serializes to a standalone document.
type Canvas struct {
	W, H int
	b    strings.Builder
}

// NewCanvas returns an empty canvas of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 480
	}
	return &Canvas{W: w, H: h}
}

// Rect draws a rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill, stroke string, strokeWidth float64) {
	fmt.Fprintf(&c.b,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x, y, w, h, escAttr(fill), escAttr(stroke), strokeWidth)
}

// Circle draws a circle.
func (c *Canvas) Circle(cx, cy, r float64, fill, stroke string, strokeWidth, opacity float64) {
	fmt.Fprintf(&c.b,
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" stroke="%s" stroke-width="%.2f" fill-opacity="%.2f"/>`+"\n",
		cx, cy, r, escAttr(fill), escAttr(stroke), strokeWidth, opacity)
}

// Line draws a segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, escAttr(stroke), width)
}

// Polygon draws a closed polygon from (x, y) pairs.
func (c *Canvas) Polygon(pts [][2]float64, fill, stroke string, strokeWidth, opacity float64) {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", p[0], p[1])
	}
	fmt.Fprintf(&c.b,
		`<polygon points="%s" fill="%s" stroke="%s" stroke-width="%.2f" fill-opacity="%.2f"/>`+"\n",
		sb.String(), escAttr(fill), escAttr(stroke), strokeWidth, opacity)
}

// Anchor positions for Text.
const (
	AnchorStart  = "start"
	AnchorMiddle = "middle"
	AnchorEnd    = "end"
)

// Text draws a text label.
func (c *Canvas) Text(x, y float64, s string, size float64, fill, anchor string) {
	if anchor == "" {
		anchor = AnchorStart
	}
	fmt.Fprintf(&c.b,
		`<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif" fill="%s" text-anchor="%s">%s</text>`+"\n",
		x, y, size, escAttr(fill), escAttr(anchor), escText(s))
}

// Title adds a chart title centered at the top.
func (c *Canvas) Title(s string) {
	c.Text(float64(c.W)/2, 18, s, 14, "#222222", AnchorMiddle)
}

// String serializes the canvas as a complete SVG document.
func (c *Canvas) String() string {
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n%s</svg>\n",
		c.W, c.H, c.W, c.H, c.b.String())
}

// escText escapes a string for SVG text content.
func escText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// escAttr escapes a string for an SVG attribute value.
func escAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// RGB is a color.
type RGB struct{ R, G, B uint8 }

// Hex renders the color as #rrggbb.
func (c RGB) Hex() string { return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B) }

// Ramp maps a normalized value in [0,1] to a color by piecewise-linear
// interpolation over its stops.
type Ramp []RGB

// EnergyRamp is the green→yellow→red scale used by the energy maps (green
// = efficient, red = energy-hungry), mirroring energy-label iconography.
var EnergyRamp = Ramp{
	{0x1a, 0x96, 0x41}, // green
	{0xd8, 0xd3, 0x35}, // yellow
	{0xd9, 0x2b, 0x1c}, // red
}

// GrayRamp is the black-and-white scale of the correlation matrix: light
// = weak correlation, dark = strong.
var GrayRamp = Ramp{
	{0xf5, 0xf5, 0xf5},
	{0x11, 0x11, 0x11},
}

// At interpolates the ramp at t ∈ [0,1]; out-of-range values clamp and
// NaN returns mid-gray.
func (r Ramp) At(t float64) RGB {
	if len(r) == 0 {
		return RGB{128, 128, 128}
	}
	if math.IsNaN(t) {
		return RGB{160, 160, 160}
	}
	if t <= 0 || len(r) == 1 {
		return r[0]
	}
	if t >= 1 {
		return r[len(r)-1]
	}
	scaled := t * float64(len(r)-1)
	i := int(scaled)
	frac := scaled - float64(i)
	a, b := r[i], r[i+1]
	lerp := func(x, y uint8) uint8 {
		return uint8(math.Round(float64(x) + (float64(y)-float64(x))*frac))
	}
	return RGB{lerp(a.R, b.R), lerp(a.G, b.G), lerp(a.B, b.B)}
}
