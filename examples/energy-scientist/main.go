// The energy-scientist scenario of §2.2.1: benchmarking analysis over
// groups of buildings with similar properties. The scientist compares the
// three univariate outlier detectors on the same dirty attribute, records
// the chosen configuration so INDICE can suggest it to non-expert users,
// validates the clustering with the silhouette index, and inspects rules
// templated on the energy class.
//
//	go run ./examples/energy-scientist
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"indice/internal/assoc"
	"indice/internal/cluster"
	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/outlier"
	"indice/internal/query"
	"indice/internal/render"
	"indice/internal/stats"
	"indice/internal/supervised"
	"indice/internal/synth"
)

func main() {
	city, err := synth.GenerateCity(synth.DefaultCityConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.Certificates = 6000
	ds, err := synth.Generate(cfg, city)
	if err != nil {
		log.Fatal(err)
	}
	dirty, truth, err := synth.Corrupt(ds.Table, synth.DefaultCorruptionConfig())
	if err != nil {
		log.Fatal(err)
	}
	planted := 0
	for _, rows := range truth.OutlierRows {
		planted += len(rows)
	}
	fmt.Printf("collection: %d certificates, %d planted gross outliers\n",
		dirty.NumRows(), planted)

	// 1. Compare the univariate detectors on the case-study attributes.
	fmt.Println("\nunivariate detector comparison over the thermo-physical subset:")
	for _, m := range []outlier.Method{outlier.MethodBoxplot, outlier.MethodGESD, outlier.MethodMAD} {
		_, union, err := outlier.DetectColumns(dirty, epc.CaseStudyAttributes, outlier.DefaultConfig(m))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s flagged %4d rows\n", m, len(union))
	}

	// 2. Record the expert's choice: gESD for the U-values, MAD elsewhere.
	store := outlier.NewSuggestionStore()
	gesd := outlier.DefaultConfig(outlier.MethodGESD)
	for _, a := range []string{epc.AttrUOpaque, epc.AttrUWindows} {
		store.Record(outlier.UsageRecord{Attr: a, Config: gesd, Expert: true})
	}
	mad := outlier.DefaultConfig(outlier.MethodMAD)
	for _, a := range []string{epc.AttrAspectRatio, epc.AttrHeatSurface, epc.AttrETAH} {
		store.Record(outlier.UsageRecord{Attr: a, Config: mad, Expert: true})
	}
	suggested, _ := store.Suggest(epc.AttrUOpaque)
	fmt.Printf("\nsuggestion store: non-experts analysing %s now get %s by default\n",
		epc.AttrUOpaque, suggested.Method)
	f, err := os.Create("expert_configs.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("persisted expert configurations to expert_configs.json")

	// 3. Full pipeline with the expert store wired in.
	eng, err := core.NewEngine(dirty, city.Hierarchy, core.Options{Suggestions: store})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Select(query.Residential()); err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPreprocessConfig()
	pcfg.SkipCleaning = true
	pcfg.Multivariate = true // scientists also run the DBSCAN screen
	rep, err := eng.Preprocess(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npre-processing removed %d rows (univariate %s + DBSCAN eps=%.3f minPts=%d)\n",
		len(rep.OutlierRows), rep.UnivariateMethod, rep.Multivariate.Eps, rep.Multivariate.MinPts)

	an, err := eng.Analyze(core.DefaultAnalysisConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K-means: elbow K = %d, sizes %v\n", an.ChosenK, an.Clustering.Sizes)

	// 4. Validate the clustering with the silhouette on a sample.
	mat, _, err := eng.Table().Matrix(epc.CaseStudyAttributes...)
	if err != nil {
		log.Fatal(err)
	}
	sampleN := 800
	if len(mat) < sampleN {
		sampleN = len(mat)
	}
	sample := make([][]float64, sampleN)
	labels := make([]int, sampleN)
	stride := len(mat) / sampleN
	if stride < 1 {
		stride = 1
	}
	kept := 0
	for i := 0; i < len(mat) && kept < sampleN; i += stride {
		sample[kept] = mat[i]
		labels[kept] = an.Clustering.Labels[i]
		kept++
	}
	sil, err := cluster.Silhouette(sample[:kept], labels[:kept])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("silhouette (n=%d sample): %.3f\n", kept, sil)

	// 5. Future-work extensions: hierarchical clustering on a sample with
	// its dendrogram, Spearman rank correlations, and a supervised kNN
	// benchmark predicting EPH from the thermo-physical attributes.
	sampleH := sample[:80]
	dg, err := cluster.Hierarchical(sampleH, cluster.AverageLinkage)
	if err != nil {
		log.Fatal(err)
	}
	hLabels, err := dg.Cut(an.ChosenK)
	if err != nil {
		log.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, l := range hLabels {
		distinct[l] = true
	}
	fmt.Printf("\nhierarchical clustering (average linkage, n=80 sample): cut at K=%d -> %d clusters\n",
		an.ChosenK, len(distinct))
	dsvg, err := render.DendrogramChart("Agglomerative dendrogram (sample)", dg, 720, 380)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("scientist_dendrogram.svg", []byte(dsvg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote scientist_dendrogram.svg")

	ephVals, _ := eng.Table().Floats(epc.AttrEPH)
	uoVals, _ := eng.Table().Floats(epc.AttrUOpaque)
	rho, err := stats.Spearman(ephVals, uoVals)
	if err != nil {
		log.Fatal(err)
	}
	pear, _ := stats.Pearson(ephVals, uoVals)
	fmt.Printf("EPH vs Uo: Spearman rho=%.3f, Pearson r=%.3f\n", rho, pear)

	// Keep only rows whose response survived corruption (EPH may be one
	// of the randomly blanked numeric cells).
	_, rowsIdx, _ := eng.Table().Matrix(epc.CaseStudyAttributes...)
	var matRows [][]float64
	var respAll []float64
	for i, r := range rowsIdx {
		if v := ephVals[r]; !math.IsNaN(v) {
			matRows = append(matRows, mat[i])
			respAll = append(respAll, v)
		}
	}
	train, test, err := supervised.SplitIndices(len(matRows), 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	trX := make([][]float64, len(train))
	trY := make([]float64, len(train))
	for i, r := range train {
		trX[i], trY[i] = matRows[r], respAll[r]
	}
	knn, _ := supervised.NewKNN(8)
	if err := knn.FitRegression(trX, trY); err != nil {
		log.Fatal(err)
	}
	pred := make([]float64, len(test))
	truthY := make([]float64, len(test))
	for i, r := range test {
		p, err := knn.PredictValue(matRows[r])
		if err != nil {
			log.Fatal(err)
		}
		pred[i], truthY[i] = p, respAll[r]
	}
	r2, _ := supervised.R2(truthY, pred)
	mae, _ := supervised.MAE(truthY, pred)
	fmt.Printf("kNN benchmark (EPH from 5 attrs): R2=%.3f MAE=%.1f kWh/m2y on %d held-out units\n",
		r2, mae, len(test))

	// 6. Rules templated on the energy class, the benchmarking view.
	tpl := assoc.Template{ConsequentAttrs: []string{epc.AttrEnergyClass, epc.AttrEPH}}
	templated := tpl.Filter(an.Rules)
	fmt.Printf("\nrules with class/EPH consequents: %d; top 6 by conviction:\n", len(templated))
	fmt.Print(assoc.FormatTable(assoc.TopK(templated, assoc.ByConviction, 6)))

	html, err := eng.Dashboard(query.EnergyScientist, an)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("scientist_dashboard.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote scientist_dashboard.html (%d bytes)\n", len(html))
}
