// Quickstart: generate a synthetic EPC collection, run the full INDICE
// pipeline with defaults, and write a public-administration dashboard.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"indice/internal/core"
	"indice/internal/geocode"
	"indice/internal/query"
	"indice/internal/synth"
)

func main() {
	// 1. A synthetic city and EPC collection (stand-ins for the Piedmont
	// open data; see DESIGN.md).
	city, err := synth.GenerateCity(synth.DefaultCityConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.Certificates = 5000
	ds, err := synth.Generate(cfg, city)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d certificates x %d attributes\n",
		ds.Table.NumRows(), ds.Table.NumCols())

	// 2. Wire the engine with the referenced street map and the remote
	// geocoder fallback.
	entries := make([]geocode.ReferenceEntry, len(city.Entries))
	for i, e := range city.Entries {
		entries[i] = geocode.ReferenceEntry{
			Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point,
		}
	}
	sm, err := geocode.NewStreetMap(entries)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Table, city.Hierarchy, core.Options{
		StreetMap: sm,
		Geocoder:  geocode.NewMockGeocoder(sm, 500),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Pre-process: geospatial cleaning + MAD outlier removal.
	rep, err := eng.Preprocess(core.DefaultPreprocessConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processing: %d -> %d rows (%d outliers removed)\n",
		rep.RowsBefore, rep.RowsAfter, len(rep.OutlierRows))

	// 4. Analytics: correlations, elbow-K K-means, CART bins, rules.
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = 8
	an, err := eng.Analyze(acfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytics: K=%d, %d rules, weakly correlated predictors: %v\n",
		an.ChosenK, len(an.Rules), an.WeaklyCorrelated)

	// 5. The informative dashboard.
	html, err := eng.Dashboard(query.PublicAdministration, an)
	if err != nil {
		log.Fatal(err)
	}
	const out = "quickstart_dashboard.html"
	if err := os.WriteFile(out, []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(html))
}
