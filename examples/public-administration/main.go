// The paper's §3 case study, end to end: the public administration tailors
// the analysis to the city's E.1.1 permanent residences, cleans the dirty
// open-data dump against the municipal street registry, checks that the
// thermo-physical attribute subset is weakly correlated (Figure 3),
// clusters buildings with K-means and the SSE elbow, mines association
// rules over CART-discretized attributes (Figure 4), and explores the
// energy maps at every zoom level (Figure 2).
//
//	go run ./examples/public-administration
package main

import (
	"fmt"
	"log"
	"os"

	"indice/internal/assoc"
	"indice/internal/core"
	"indice/internal/dashboard"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/geocode"
	"indice/internal/query"
	"indice/internal/synth"
)

func main() {
	// The dirty open-data dump: ~12% of addresses carry typos, ZIP codes
	// and coordinates are missing or wrong, gross outliers lurk in the
	// thermo-physical attributes.
	city, err := synth.GenerateCity(synth.DefaultCityConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.Certificates = 8000
	ds, err := synth.Generate(cfg, city)
	if err != nil {
		log.Fatal(err)
	}
	dirty, truth, err := synth.Corrupt(ds.Table, synth.DefaultCorruptionConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open-data dump: %d certificates; %d planted address typos\n",
		dirty.NumRows(), len(truth.TypoRows))

	entries := make([]geocode.ReferenceEntry, len(city.Entries))
	for i, e := range city.Entries {
		entries[i] = geocode.ReferenceEntry{
			Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point,
		}
	}
	sm, err := geocode.NewStreetMap(entries)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dirty, city.Hierarchy, core.Options{
		StreetMap: sm,
		Geocoder:  geocode.NewMockGeocoder(sm, 2000), // free-request budget
	})
	if err != nil {
		log.Fatal(err)
	}

	// Case-study selection: housing units of type E.1.1.
	n, err := eng.Select(query.Residential())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d E.1.1 residences\n", n)

	// Pre-processing with the paper's defaults (phi=0.8, MAD 3.5).
	rep, err := eng.Preprocess(core.DefaultPreprocessConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cleaning: %d via street map, %d geocoded, %d unresolved; %d outlier rows removed\n",
		rep.Cleaning.StreetMap, rep.Cleaning.Geocoded, rep.Cleaning.Unresolved, len(rep.OutlierRows))

	// Analytics over {S/V, Uo, Uw, Sr, ETAH} with response EPH.
	an, err := eng.Analyze(core.DefaultAnalysisConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation check (Figure 3): max |r| = %.3f -> weakly correlated = %v\n",
		an.Correlations.MaxAbsOffDiagonal(), an.WeaklyCorrelated)
	fmt.Printf("K-means (Figure 4): elbow K = %d, cluster sizes %v\n",
		an.ChosenK, an.Clustering.Sizes)
	for c, m := range an.ClusterResponseMeans {
		fmt.Printf("  cluster %d: mean EPH %.1f kWh/m2y\n", c, m)
	}

	// The footnote-4 style discretizations and the rule table.
	for _, attr := range []string{epc.AttrUWindows, epc.AttrUOpaque, epc.AttrETAH} {
		fmt.Println(" ", an.Binnings[attr])
	}
	top := assoc.TopK(an.Rules, assoc.ByLift, 8)
	fmt.Println("top rules by lift:")
	fmt.Print(assoc.FormatTable(top))

	// Figure 2: the drill-down — one map per zoom level.
	for _, level := range []geo.Level{geo.LevelCity, geo.LevelDistrict, geo.LevelNeighbourhood, geo.LevelUnit} {
		svg, kind, err := dashboard.RenderMap(eng.Table(), eng.Hierarchy(), dashboard.MapSpec{
			Title: fmt.Sprintf("EPH at %s zoom", level),
			Level: level,
			Attr:  epc.AttrEPH,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("pa_map_%s.svg", level)
		if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s map)\n", name, kind)
	}

	// And the full interactive dashboard document.
	html, err := eng.Dashboard(query.PublicAdministration, an)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("pa_dashboard.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote pa_dashboard.html (%d bytes)\n", len(html))
}
