// The citizen scenario of §2.2.1: a prospective buyer wants to "discover
// areas of the city with more performing buildings, to buy a flat that
// performs well in terms of energy efficiency". The example queries the
// collection district by district, ranks areas by average heating demand,
// inspects the energy-class mix of the best district, and renders the
// neighbourhood choropleth the citizen dashboard proposes.
//
//	go run ./examples/citizen
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"indice/internal/core"
	"indice/internal/dashboard"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/query"
	"indice/internal/stats"
	"indice/internal/synth"
)

func main() {
	city, err := synth.GenerateCity(synth.DefaultCityConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := synth.DefaultConfig()
	cfg.Certificates = 6000
	ds, err := synth.Generate(cfg, city)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Table, city.Hierarchy, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Select(query.Residential()); err != nil {
		log.Fatal(err)
	}
	// The data is clean in this scenario; only screen outliers.
	pcfg := core.DefaultPreprocessConfig()
	pcfg.SkipCleaning = true
	if _, err := eng.Preprocess(pcfg); err != nil {
		log.Fatal(err)
	}

	// Rank districts by mean normalized heating demand.
	zs, err := dashboard.AggregateByZone(eng.Table(), eng.Hierarchy(), geo.LevelDistrict, epc.AttrEPH)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(zs, func(i, j int) bool { return zs[i].Mean < zs[j].Mean })
	fmt.Println("districts ranked by average EPH (lower = more efficient):")
	for rank, z := range zs {
		fmt.Printf("  %d. %-12s mean EPH %6.1f kWh/m2y over %d certificates\n",
			rank+1, z.Zone.Name, z.Mean, z.Count)
	}
	best := zs[0]

	// Drill into the best district: energy class mix.
	sub, err := query.Select(eng.Table(), query.InDistrict(best.Zone.ID))
	if err != nil {
		log.Fatal(err)
	}
	classes, err := sub.Strings(epc.AttrEnergyClass)
	if err != nil {
		log.Fatal(err)
	}
	d := stats.DescribeCategorical(classes, 4)
	fmt.Printf("\nbest district %q: %d residences, modal class %s (%d units)\n",
		best.Zone.Name, d.Count, d.Mode, d.ModeFreq)
	for _, c := range d.TopK {
		fmt.Printf("  class %-3s %5d units (%.1f%%)\n",
			c.Value, c.Count, 100*float64(c.Count)/float64(d.Count))
	}

	// The neighbourhood choropleth the citizen dashboard proposes.
	svg, kind, err := dashboard.RenderMap(eng.Table(), eng.Hierarchy(), dashboard.MapSpec{
		Title: "Average EPH by neighbourhood",
		Level: geo.LevelNeighbourhood,
		Attr:  epc.AttrEPH,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("citizen_choropleth.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote citizen_choropleth.svg (%s map)\n", kind)

	// The complete citizen dashboard needs no analytics tier.
	html, err := eng.Dashboard(query.Citizen, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("citizen_dashboard.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote citizen_dashboard.html (%d bytes)\n", len(html))
}
