package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indice/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// writeDataset generates the deterministic synthetic collection and
// stores it as the typed CSV the CLI ingests.
func writeDataset(t *testing.T, dir string, certificates int) string {
	t.Helper()
	ccfg := synth.DefaultCityConfig()
	ccfg.Streets, ccfg.CivicsPerStreet = 40, 10
	city, err := synth.GenerateCity(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := synth.DefaultConfig()
	gcfg.Certificates = certificates
	ds, err := synth.Generate(gcfg, city)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "epcs.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunQueryReportGolden drives the batch CLI path with a -query DSL
// selection and pins the run report against a golden file. Regenerate
// with `go test ./cmd/indice -update` after intentional changes.
func TestRunQueryReportGolden(t *testing.T) {
	dir := t.TempDir()
	epcs := writeDataset(t, dir, 1200)
	report := filepath.Join(dir, "report.md")

	var log strings.Builder
	err := run(options{
		epcsPath:    epcs,
		stakeholder: "pa",
		out:         filepath.Join(dir, "dashboard.html"),
		phi:         0.8,
		use:         "E.1.1",
		queryDSL:    "eph in [20, 400] and energy_class in {B, C, D, E, F, G}",
		kMax:        4,
		reportPath:  report,
		parallelism: 1,
	}, &log)
	if err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, log.String())
	}
	if !strings.Contains(log.String(), "certificates matching eph in [20, 400]") {
		t.Fatalf("query selection not logged:\n%s", log.String())
	}

	got, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "query_report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/indice -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from its golden copy.\nIf the change is intentional, regenerate with `go test ./cmd/indice -update`.\ngot %d bytes, want %d bytes\n--- got ---\n%s", len(got), len(want), got)
	}
}

// TestRunRejectsBadQuery pins the CLI error path for malformed DSL.
func TestRunRejectsBadQuery(t *testing.T) {
	var log strings.Builder
	err := run(options{epcsPath: "nonexistent.csv", queryDSL: "eph in ["}, &log)
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("err = %v, want parse error (before any file I/O)", err)
	}
}
