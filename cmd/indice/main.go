// Command indice runs the full INDICE pipeline over an EPC collection:
// load → select → pre-process (geospatial cleaning + outlier removal) →
// analyze (correlations, K-means with elbow K, CART discretization,
// association rules) → render the informative dashboard.
//
//	indice -epcs epcs.csv -streets streets.csv -stakeholder pa -out dashboard.html
//
// The -query flag narrows the collection with the same predicate DSL the
// server's /api/query speaks (see internal/query.Parse):
//
//	indice -epcs epcs.csv -query 'eph in [50, 150] and energy_class in {C, D}'
//
// Input files come from epcgen (or any source honouring the typed-CSV
// schema of internal/table and the street-map CSV layout of epcgen).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/geocode"
	"indice/internal/parallel"
	"indice/internal/query"
	"indice/internal/table"
)

// options carries the parsed command line; run executes the pipeline so
// tests can drive the batch path without exec'ing the binary.
type options struct {
	epcsPath    string
	streetsPath string
	stakeholder string
	out         string
	phi         float64
	quota       int
	use         string
	queryDSL    string
	kMax        int
	skipAnalyze bool
	reportPath  string
	parallelism int
}

func main() {
	var o options
	flag.StringVar(&o.epcsPath, "epcs", "", "EPC table (typed CSV from epcgen); required")
	flag.StringVar(&o.streetsPath, "streets", "", "referenced street map CSV; enables geospatial cleaning")
	flag.StringVar(&o.stakeholder, "stakeholder", "public-administration", "citizen | public-administration | energy-scientist")
	flag.StringVar(&o.out, "out", "dashboard.html", "dashboard output path")
	flag.Float64Var(&o.phi, "phi", 0.8, "Levenshtein similarity threshold for address reconciliation")
	flag.IntVar(&o.quota, "geocoder-quota", 1000, "free remote geocoding requests (simulated)")
	flag.StringVar(&o.use, "use", epc.UseResidential, "intended-use selection ('' disables)")
	flag.StringVar(&o.queryDSL, "query", "", `predicate DSL selection, e.g. 'eph in [50, 150] and energy_class in {C, D}'; ANDs with -use`)
	flag.IntVar(&o.kMax, "kmax", 10, "upper bound of the K-means sweep")
	flag.BoolVar(&o.skipAnalyze, "skip-analysis", false, "skip the analytics tier (maps only)")
	flag.StringVar(&o.reportPath, "report", "", "optional markdown run-report output path")
	flag.IntVar(&o.parallelism, "parallelism", 0, "analytics worker goroutines (0 = all CPUs, 1 = sequential); results are identical at any setting")
	flag.Parse()
	if err := run(o, os.Stderr); err != nil {
		fatal(err)
	}
}

func run(o options, logw io.Writer) error {
	if o.epcsPath == "" {
		return fmt.Errorf("-epcs is required")
	}
	workers := o.parallelism
	if workers == 0 {
		workers = parallel.Auto
	}
	var sel query.Predicate
	if o.queryDSL != "" {
		var err error
		if sel, err = query.Parse(o.queryDSL); err != nil {
			return err
		}
	}

	tab, err := loadTable(o.epcsPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "loaded %d certificates x %d attributes\n", tab.NumRows(), tab.NumCols())

	hier, err := hierarchyFromData(tab)
	if err != nil {
		return err
	}

	opts := core.Options{}
	if o.streetsPath != "" {
		sm, err := loadStreetMap(o.streetsPath)
		if err != nil {
			return err
		}
		opts.StreetMap = sm
		opts.Geocoder = geocode.NewMockGeocoder(sm, o.quota)
	}
	eng, err := core.NewEngine(tab, hier, opts)
	if err != nil {
		return err
	}

	if o.use != "" {
		n, err := eng.Select(query.In{Attr: epc.AttrIntendedUse, Values: []string{o.use}})
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "selected %d certificates with intended use %s\n", n, o.use)
	}
	if sel != nil {
		n, err := eng.Select(sel)
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "selected %d certificates matching %s\n", n, sel)
	}

	pcfg := core.DefaultPreprocessConfig()
	pcfg.Clean.Phi = o.phi
	pcfg.Parallelism = workers
	rep, err := eng.Preprocess(pcfg)
	if err != nil {
		return err
	}
	if rep.Cleaning != nil {
		fmt.Fprintf(logw,
			"cleaning: %d untouched, %d via street map, %d geocoded, %d unresolved (%d remote requests)\n",
			rep.Cleaning.Untouched, rep.Cleaning.StreetMap, rep.Cleaning.Geocoded,
			rep.Cleaning.Unresolved, rep.Cleaning.GeocoderRequests)
	}
	fmt.Fprintf(logw, "outliers (%s): removed %d rows, %d remain\n",
		rep.UnivariateMethod, len(rep.OutlierRows), rep.RowsAfter)

	var an *core.Analysis
	if !o.skipAnalyze {
		acfg := core.DefaultAnalysisConfig()
		acfg.KMax = o.kMax
		acfg.Parallelism = workers
		an, err = eng.Analyze(acfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "analytics: K=%d clusters, %d association rules, weakly correlated=%v\n",
			an.ChosenK, len(an.Rules), an.WeaklyCorrelated)
	}

	s, err := query.ParseStakeholder(o.stakeholder)
	if err != nil {
		return err
	}
	html, err := eng.Dashboard(s, an)
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, []byte(html), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(logw, "wrote %s dashboard to %s (%d bytes)\n", s, o.out, len(html))

	if o.reportPath != "" {
		if err := os.WriteFile(o.reportPath, []byte(eng.Report(rep, an)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(logw, "wrote run report to %s\n", o.reportPath)
	}
	return nil
}

func loadTable(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return table.ReadCSV(f)
}

// loadStreetMap parses the epcgen street CSV layout:
// street,house_number,zip,lat,lon with a header row.
func loadStreetMap(path string) (*geocode.StreetMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	if _, err := r.Read(); err != nil { // header
		return nil, fmt.Errorf("reading street map header: %w", err)
	}
	var entries []geocode.ReferenceEntry
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading street map: %w", err)
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("street map row has %d fields, want 5", len(rec))
		}
		lat, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("street map latitude: %w", err)
		}
		lon, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("street map longitude: %w", err)
		}
		entries = append(entries, geocode.ReferenceEntry{
			Street:      rec[0],
			HouseNumber: rec[1],
			ZIP:         rec[2],
			Point:       geo.Point{Lat: lat, Lon: lon},
		})
	}
	return geocode.NewStreetMap(entries)
}

// hierarchyFromData builds the 2x4-district grid hierarchy over the
// observed coordinate bounds — the CLI fallback when no official zone
// polygons ship with the data.
func hierarchyFromData(t *table.Table) (*geo.Hierarchy, error) {
	lat, err := t.Floats(epc.AttrLatitude)
	if err != nil {
		return nil, err
	}
	lon, err := t.Floats(epc.AttrLongitude)
	if err != nil {
		return nil, err
	}
	b := geo.EmptyBounds()
	for i := range lat {
		p := geo.Point{Lat: lat[i], Lon: lon[i]}
		if p.Valid() && (p.Lat != 0 || p.Lon != 0) {
			b = b.Extend(p)
		}
	}
	if b.IsEmpty() {
		return nil, fmt.Errorf("no valid coordinates in the dataset")
	}
	// Grow slightly so boundary points stay strictly inside.
	const pad = 1e-4
	b.MinLat -= pad
	b.MinLon -= pad
	b.MaxLat += pad
	b.MaxLon += pad
	city := "dataset"
	if cities, err := t.Strings(epc.AttrCity); err == nil && len(cities) > 0 {
		city = cities[0]
	}
	return geo.GridHierarchy(city, b, 2, 4, 2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indice:", err)
	os.Exit(1)
}
