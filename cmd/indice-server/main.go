// Command indice-server serves the INDICE dashboards over HTTP: the
// dynamic, navigable counterpart of the one-shot indice CLI.
//
// Batch mode (default) analyzes the input once and serves it frozen:
//
//	indice-server -epcs epcs.csv [-streets streets.csv] -addr :8080
//
// Live mode keeps ingesting while serving: certificates stream in via
// POST /api/ingest into a sharded store, and the pipeline re-runs over
// consistent snapshots — on demand (POST /api/refresh) and/or on a timer:
//
//	indice-server -ingest -refresh-interval 30s -shards 4 -addr :8080
//
// With -data-dir the live store is durable: every acked ingest batch is
// written ahead to a crash-safe log before it becomes visible, sealed
// segments are checkpointed to disk, and a restart over the same
// directory recovers exactly the acked state — kill -9 loses nothing:
//
//	indice-server -ingest -data-dir /var/lib/indice -fsync always
//
// Routes: / (navigation), /dashboard/{stakeholder}, /map?level=&attr=,
// /api/{stats,zones,rules,clusters,health} and the Prometheus /metrics
// exposition; live mode adds /api/{ingest,refresh,store}.
//
// Scale-out serving splits the load over processes with -role. A leader
// is a live server that additionally streams its sealed segments to
// replicas; replicas pull, serve reads, and answer epoch-pinned partial
// queries; a coordinator fans /api/query out over the replicas and
// merges the partials at one common epoch:
//
//	indice-server -ingest -role leader -addr :8080
//	indice-server -role replica -leader http://localhost:8080 -addr :8081
//	indice-server -role coordinator -replicas http://localhost:8081,http://localhost:8082 -addr :8090
//
// All roles expose GET /api/ready (503 until the process can serve
// correct data) next to the always-200 /api/health report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/geocode"
	"indice/internal/obs"
	"indice/internal/parallel"
	"indice/internal/query"
	"indice/internal/scaleout"
	"indice/internal/server"
	"indice/internal/store"
	"indice/internal/synth"
	"indice/internal/table"
)

func main() {
	var (
		epcsPath = flag.String("epcs", "", "EPC table (typed CSV); empty generates a synthetic demo collection")
		n        = flag.Int("n", 8000, "synthetic certificates when -epcs is empty (0 starts live mode empty)")
		addr     = flag.String("addr", ":8080", "listen address")
		use      = flag.String("use", epc.UseResidential, "intended-use selection ('' disables); batch mode only")
		kMax     = flag.Int("kmax", 10, "upper bound of the K-means sweep")
		par      = flag.Int("parallelism", 0, "analytics worker goroutines (0 = all CPUs, 1 = sequential); results are identical at any setting")

		ingest          = flag.Bool("ingest", false, "live mode: serve from a sharded streaming store with POST /api/ingest enabled")
		refreshInterval = flag.Duration("refresh-interval", 0, "live mode: re-run the pipeline this often (0 = only on POST /api/refresh)")
		shards          = flag.Int("shards", 4, "live mode: store shard count")
		validate        = flag.Bool("validate", false, "live mode: reject ingested rows violating the EPC attribute specs")
		dataDir         = flag.String("data-dir", "", "live mode: persist the store here (WAL + checkpoints); empty keeps it in memory. A non-empty directory is recovered on boot")
		fsyncMode       = flag.String("fsync", "always", "live mode WAL flush policy with -data-dir: always, interval or off")
		residentRows    = flag.Int("max-resident-rows", 0, "live mode with -data-dir: evict checkpointed segments beyond this many resident rows (0 = keep all in memory)")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling (default)")

		role           = flag.String("role", "", "scale-out role: leader, replica or coordinator (empty = single node)")
		leaderURL      = flag.String("leader", "", "replica: the leader's base URL (http://host:port)")
		replicaList    = flag.String("replicas", "", "coordinator: comma-separated replica base URLs")
		syncInterval   = flag.Duration("sync-interval", time.Second, "replica: leader poll interval")
		readyMaxLag    = flag.Uint64("ready-max-lag", 0, "replica: /api/ready answers 503 while more than this many epochs behind the leader")
		hedgeAfter     = flag.Duration("hedge-after", 250*time.Millisecond, "coordinator: hedge a slow shard-range leg to the next replica after this long")
		replicaTimeout = flag.Duration("replica-timeout", 5*time.Second, "coordinator: per-replica request timeout")
	)
	flag.Parse()
	workers := *par
	if workers == 0 {
		workers = parallel.Auto
	}

	var (
		tab  *table.Table
		hier *geo.Hierarchy
		opts core.Options
	)
	// Replicas get their rows from the leader and coordinators hold no
	// data, so neither seeds a local corpus.
	wantSeed := (*epcsPath != "" || *n > 0) && *role != "replica" && *role != "coordinator"
	if *epcsPath == "" {
		city, err := synth.GenerateCity(synth.DefaultCityConfig())
		if err != nil {
			log.Fatal(err)
		}
		hier = city.Hierarchy
		if wantSeed {
			cfg := synth.DefaultConfig()
			cfg.Certificates = *n
			ds, err := synth.Generate(cfg, city)
			if err != nil {
				log.Fatal(err)
			}
			tab = ds.Table
			fmt.Fprintf(os.Stderr, "generated %d synthetic certificates\n", tab.NumRows())
		}
		entries := make([]geocode.ReferenceEntry, len(city.Entries))
		for i, e := range city.Entries {
			entries[i] = geocode.ReferenceEntry{Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point}
		}
		if sm, err := geocode.NewStreetMap(entries); err == nil {
			opts.StreetMap = sm
			opts.Geocoder = geocode.NewMockGeocoder(sm, 2000)
		}
	} else {
		f, err := os.Open(*epcsPath)
		if err != nil {
			log.Fatal(err)
		}
		tab, err = table.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		lat, err := tab.Floats(epc.AttrLatitude)
		if err != nil {
			log.Fatal(err)
		}
		lon, _ := tab.Floats(epc.AttrLongitude)
		b := geo.EmptyBounds()
		for i := range lat {
			p := geo.Point{Lat: lat[i], Lon: lon[i]}
			if p.Valid() {
				b = b.Extend(p)
			}
		}
		hier, err = geo.GridHierarchy("dataset", b, 2, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d certificates from %s\n", tab.NumRows(), *epcsPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling is opt-in and bound to its own listener, so the public
	// dashboard address never exposes /debug/pprof. The same sidecar mux
	// re-exposes /metrics, letting an ops scrape target avoid the public
	// address entirely (the main server serves /metrics too).
	if *pprofAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.HandleFunc("/metrics", obs.Handler(obs.Default))
			fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	var handler http.Handler
	closeStore := func() error { return nil }
	// postDrain runs after the HTTP server has drained its in-flight
	// requests and before the store closes: the coordinator's replica
	// clients and the replica's pull loop stop here, so a request being
	// drained never races a client that was torn down under it.
	postDrain := func() {}
	switch *role {
	case "":
		if *ingest {
			handler, closeStore = buildLive(ctx, tab, hier, opts, workers, *kMax, *shards, *validate,
				*refreshInterval, *dataDir, *fsyncMode, *residentRows, false)
		} else {
			handler = buildStatic(tab, hier, opts, workers, *kMax, *use)
		}
	case "leader":
		// A leader is a live server (the ingest endpoint feeds it) that
		// additionally streams segments to replicas.
		handler, closeStore = buildLive(ctx, tab, hier, opts, workers, *kMax, *shards, *validate,
			*refreshInterval, *dataDir, *fsyncMode, *residentRows, true)
	case "replica":
		if *leaderURL == "" {
			log.Fatal("-role replica requires -leader URL")
		}
		if *dataDir != "" {
			log.Fatal("-role replica keeps its store in memory (it re-syncs from the leader on boot); drop -data-dir")
		}
		handler, closeStore, postDrain = buildReplica(ctx, hier, opts, workers, *kMax,
			*refreshInterval, *leaderURL, *syncInterval, *readyMaxLag)
	case "coordinator":
		if *replicaList == "" {
			log.Fatal("-role coordinator requires -replicas URL,URL,...")
		}
		handler, postDrain = buildCoordinator(*replicaList, *replicaTimeout, *hedgeAfter)
	default:
		log.Fatalf("unknown -role %q (want leader, replica or coordinator)", *role)
	}

	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	// Bind before announcing, so ':0' reports the actual port — test
	// drivers (and the epcgen kill-9 harness) parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "serving INDICE on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "signal received, draining connections")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// Ordering matters: stop accepting and drain in-flight requests
		// first (a coordinator's fan-outs run on request contexts and
		// complete here), only then stop the cluster clients and close
		// the store.
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		postDrain()
		if err := closeStore(); err != nil {
			log.Fatalf("store close: %v", err)
		}
		fmt.Fprintln(os.Stderr, "bye")
	}
}

// buildStatic runs the batch pipeline once and serves the frozen result.
func buildStatic(tab *table.Table, hier *geo.Hierarchy, opts core.Options, workers, kMax int, use string) http.Handler {
	if tab == nil || tab.NumRows() == 0 {
		log.Fatal("batch mode needs data: provide -epcs or -n > 0 (or run -ingest)")
	}
	eng, err := core.NewEngine(tab, hier, opts)
	if err != nil {
		log.Fatal(err)
	}
	if use != "" {
		if _, err := eng.Select(query.In{Attr: epc.AttrIntendedUse, Values: []string{use}}); err != nil {
			log.Fatal(err)
		}
	}
	pcfg := core.DefaultPreprocessConfig()
	pcfg.Parallelism = workers
	if _, err := eng.Preprocess(pcfg); err != nil {
		log.Fatal(err)
	}
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = kMax
	acfg.Parallelism = workers
	an, err := eng.Analyze(acfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(eng, an)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "batch pipeline done (%d certificates, K=%d, %d rules)\n",
		eng.Table().NumRows(), an.ChosenK, len(an.Rules))
	return srv
}

// buildLive seeds the sharded store, starts the auto-refresh loop and
// serves from the published snapshots. With a data directory the store
// is opened durably — previous state is recovered and every acked ingest
// hits the WAL — and the returned closer flushes it on shutdown.
func buildLive(ctx context.Context, tab *table.Table, hier *geo.Hierarchy, opts core.Options,
	workers, kMax, shards int, validate bool, refreshInterval time.Duration,
	dataDir, fsyncMode string, residentRows int, asLeader bool) (http.Handler, func() error) {
	scfg := store.DefaultConfig()
	scfg.Shards = shards
	scfg.Validate = validate
	var st *store.Store
	var err error
	if dataDir != "" {
		mode, merr := store.ParseFsyncMode(fsyncMode)
		if merr != nil {
			log.Fatal(merr)
		}
		st, err = store.Open(scfg, store.Durability{
			Dir: dataDir, Fsync: mode, MaxResidentRows: residentRows,
		})
		if err == nil {
			if rec := st.RecoveryInfo(); rec != (store.RecoveryInfo{}) {
				fmt.Fprintf(os.Stderr,
					"recovered %s: %d rows from %d checkpoint segments, %d batches (%d rows) replayed from wal in %v\n",
					dataDir, rec.CheckpointRows, rec.CheckpointSegments,
					rec.ReplayedBatches, rec.ReplayedRows, rec.Took.Round(time.Millisecond))
			} else {
				fmt.Fprintf(os.Stderr, "durable store on fresh %s (fsync=%s)\n", dataDir, mode)
			}
		}
	} else {
		st, err = store.New(scfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	// A recovered store already holds its corpus; seeding on top would
	// duplicate rows on every restart.
	if tab != nil && tab.NumRows() > 0 && st.Rows() == 0 {
		res, err := st.AppendTable(tab)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "seeded store with %d certificates (%d rejected)\n",
			res.Accepted, res.Rejected)
	}
	pcfg := core.DefaultPreprocessConfig()
	pcfg.Parallelism = workers
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = kMax
	acfg.Parallelism = workers
	live, err := core.NewLive(st, hier, core.LiveConfig{
		Preprocess: pcfg,
		Analysis:   acfg,
		Options:    opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	if st.Rows() > 0 {
		if pub, err := live.Refresh(); err != nil {
			if errors.Is(err, core.ErrStoreTooSmall) {
				fmt.Fprintf(os.Stderr, "initial refresh skipped: %v\n", err)
			} else {
				log.Fatal(err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "initial refresh done in %v (%d certificates, K=%d)\n",
				pub.Took.Round(time.Millisecond), pub.Engine.Table().NumRows(), pub.Analysis.ChosenK)
		}
	}
	go live.AutoRefresh(ctx, refreshInterval)
	var srv *server.Server
	if asLeader {
		srv, err = server.NewLiveCluster(live, server.ClusterConfig{Leader: scaleout.NewLeader(st)})
		fmt.Fprintf(os.Stderr, "leader mode: replication endpoints enabled\n")
	} else {
		srv, err = server.NewLive(live)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "live mode: %d shards, refresh interval %v\n", shards, refreshInterval)
	return srv, st.Close
}

// buildReplica mirrors a leader: it learns the leader's shard layout
// (retrying until the leader is reachable), pulls segment streams into
// an in-memory store, runs its own refresh loop over the replicated
// rows, and serves reads plus epoch-pinned partial queries. The
// returned postDrain stops the pull loop — after the HTTP drain, per
// the shutdown ordering.
func buildReplica(ctx context.Context, hier *geo.Hierarchy, opts core.Options, workers, kMax int,
	refreshInterval time.Duration, leaderURL string, syncInterval time.Duration,
	readyMaxLag uint64) (http.Handler, func() error, func()) {
	client := &http.Client{Timeout: 60 * time.Second}
	var info scaleout.LeaderInfo
	for {
		var err error
		if info, err = scaleout.FetchLeaderInfo(ctx, client, leaderURL); err == nil {
			break
		}
		if ctx.Err() != nil {
			log.Fatal("interrupted before the leader became reachable")
		}
		log.Printf("replica: leader %s not reachable (%v), retrying", leaderURL, err)
		select {
		case <-ctx.Done():
			log.Fatal("interrupted before the leader became reachable")
		case <-time.After(time.Second):
		}
	}
	scfg := store.DefaultConfig()
	scfg.Shards = info.Shards
	scfg.SegmentRows = info.SegmentRows
	st, err := store.New(scfg)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := core.DefaultPreprocessConfig()
	pcfg.Parallelism = workers
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = kMax
	acfg.Parallelism = workers
	live, err := core.NewLive(st, hier, core.LiveConfig{
		Preprocess: pcfg,
		Analysis:   acfg,
		Options:    opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	repl := scaleout.NewReplica(st, leaderURL, client, syncInterval)
	srv, err := server.NewLiveCluster(live, server.ClusterConfig{Replica: repl, ReadyMaxLag: readyMaxLag})
	if err != nil {
		log.Fatal(err)
	}
	// The server wired repl.OnApply; only now may the pull loop start.
	// It runs on its own context so it keeps serving sync state while
	// the HTTP server drains, and stops in postDrain.
	replCtx, replCancel := context.WithCancel(context.Background())
	go repl.Run(replCtx)
	go live.AutoRefresh(ctx, refreshInterval)
	fmt.Fprintf(os.Stderr, "replica mode: leader %s, %d shards, sync interval %v\n",
		leaderURL, info.Shards, syncInterval)
	return srv, st.Close, replCancel
}

// buildCoordinator serves /api/query by scatter-gather over the given
// replicas; it holds no local data. The returned postDrain stops the
// status poller after in-flight fan-outs have drained.
func buildCoordinator(replicaList string, timeout, hedgeAfter time.Duration) (http.Handler, func()) {
	var urls []string
	for _, u := range strings.Split(replicaList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	coord, err := scaleout.NewCoordinator(scaleout.CoordinatorConfig{
		Replicas:   urls,
		Timeout:    timeout,
		HedgeAfter: hedgeAfter,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.NewCoordinator(coord)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "coordinator mode: %d replicas, hedge after %v, per-replica timeout %v\n",
		len(urls), hedgeAfter, timeout)
	return srv, coord.Close
}
