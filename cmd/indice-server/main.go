// Command indice-server serves the INDICE dashboards over HTTP: the
// dynamic, navigable counterpart of the one-shot indice CLI.
//
//	indice-server -epcs epcs.csv [-streets streets.csv] -addr :8080
//
// Routes: / (navigation), /dashboard/{stakeholder}, /map?level=&attr=,
// /api/{stats,zones,rules,clusters}.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"indice/internal/core"
	"indice/internal/epc"
	"indice/internal/geo"
	"indice/internal/geocode"
	"indice/internal/parallel"
	"indice/internal/query"
	"indice/internal/server"
	"indice/internal/synth"
	"indice/internal/table"
)

func main() {
	var (
		epcsPath = flag.String("epcs", "", "EPC table (typed CSV); empty generates a synthetic demo collection")
		n        = flag.Int("n", 8000, "synthetic certificates when -epcs is empty")
		addr     = flag.String("addr", ":8080", "listen address")
		use      = flag.String("use", epc.UseResidential, "intended-use selection ('' disables)")
		kMax     = flag.Int("kmax", 10, "upper bound of the K-means sweep")
		par      = flag.Int("parallelism", 0, "analytics worker goroutines (0 = all CPUs, 1 = sequential); results are identical at any setting")
	)
	flag.Parse()
	workers := *par
	if workers == 0 {
		workers = parallel.Auto
	}

	var (
		tab  *table.Table
		hier *geo.Hierarchy
		opts core.Options
	)
	if *epcsPath == "" {
		city, err := synth.GenerateCity(synth.DefaultCityConfig())
		if err != nil {
			log.Fatal(err)
		}
		cfg := synth.DefaultConfig()
		cfg.Certificates = *n
		ds, err := synth.Generate(cfg, city)
		if err != nil {
			log.Fatal(err)
		}
		tab, hier = ds.Table, city.Hierarchy
		entries := make([]geocode.ReferenceEntry, len(city.Entries))
		for i, e := range city.Entries {
			entries[i] = geocode.ReferenceEntry{Street: e.Street, HouseNumber: e.HouseNumber, ZIP: e.ZIP, Point: e.Point}
		}
		if sm, err := geocode.NewStreetMap(entries); err == nil {
			opts.StreetMap = sm
			opts.Geocoder = geocode.NewMockGeocoder(sm, 2000)
		}
		fmt.Fprintf(os.Stderr, "generated %d synthetic certificates\n", tab.NumRows())
	} else {
		f, err := os.Open(*epcsPath)
		if err != nil {
			log.Fatal(err)
		}
		tab, err = table.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		lat, err := tab.Floats(epc.AttrLatitude)
		if err != nil {
			log.Fatal(err)
		}
		lon, _ := tab.Floats(epc.AttrLongitude)
		b := geo.EmptyBounds()
		for i := range lat {
			p := geo.Point{Lat: lat[i], Lon: lon[i]}
			if p.Valid() {
				b = b.Extend(p)
			}
		}
		hier, err = geo.GridHierarchy("dataset", b, 2, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d certificates from %s\n", tab.NumRows(), *epcsPath)
	}

	eng, err := core.NewEngine(tab, hier, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *use != "" {
		if _, err := eng.Select(query.In{Attr: epc.AttrIntendedUse, Values: []string{*use}}); err != nil {
			log.Fatal(err)
		}
	}
	pcfg := core.DefaultPreprocessConfig()
	pcfg.Parallelism = workers
	if _, err := eng.Preprocess(pcfg); err != nil {
		log.Fatal(err)
	}
	acfg := core.DefaultAnalysisConfig()
	acfg.KMax = *kMax
	acfg.Parallelism = workers
	an, err := eng.Analyze(acfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(eng, an)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serving INDICE on %s (%d certificates, K=%d, %d rules)\n",
		*addr, eng.Table().NumRows(), an.ChosenK, len(an.Rules))
	log.Fatal(http.ListenAndServe(*addr, srv))
}
