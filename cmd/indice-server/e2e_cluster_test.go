package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestE2EClusterReplicaKill is the full scale-out smoke on real
// processes: a leader ingesting 50k rows streamed over HTTP, two
// replicas pulling segments, a coordinator scatter-gathering over them —
// and kill -9 on one replica mid-load. The coordinator must keep
// answering (degrading to the survivor, counted on /metrics) and, once
// the stream lands, answer exactly the leader's counts.
func TestE2EClusterReplicaKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real binaries; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}

	bins := t.TempDir()
	serverBin := filepath.Join(bins, "indice-server")
	epcgenBin := filepath.Join(bins, "epcgen")
	for pkg, out := range map[string]string{
		"indice/cmd/indice-server": serverBin,
		"indice/cmd/epcgen":        epcgenBin,
	} {
		cmd := exec.Command(goBin, "build", "-o", out, pkg)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, msg)
		}
	}

	// Leader: live mode, empty, manual refresh only (the analysis
	// pipeline would otherwise compete with replication for the CPU).
	leader := startRole(t, serverBin, "/api/store",
		"-role", "leader", "-n", "0", "-shards", "4", "-refresh-interval", "0")
	leaderURL := "http://" + leader.addr

	rep1 := startRole(t, serverBin, "/api/health",
		"-role", "replica", "-leader", leaderURL, "-sync-interval", "100ms", "-refresh-interval", "0")
	rep2 := startRole(t, serverBin, "/api/health",
		"-role", "replica", "-leader", leaderURL, "-sync-interval", "100ms", "-refresh-interval", "0")

	coord := startRole(t, serverBin, "/api/health",
		"-role", "coordinator",
		"-replicas", "http://"+rep1.addr+",http://"+rep2.addr,
		"-hedge-after", "100ms")
	coordURL := "http://" + coord.addr

	// Stream 50k rows at the leader in 1k batches, paced so the kill
	// lands mid-load.
	gen := exec.Command(epcgenBin,
		"-n", "50000", "-stream", leaderURL+"/api/ingest",
		"-batch", "1000", "-stream-interval", "50ms")
	var genOut, genErr bytes.Buffer
	gen.Stdout, gen.Stderr = &genOut, &genErr
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	genDone := make(chan error, 1)
	go func() { genDone <- gen.Wait() }()
	defer func() { _ = gen.Process.Kill() }()

	// Wait until the coordinator can actually serve (both replicas have
	// synced something), then kill replica 2 while the stream runs.
	waitFor(t, func() bool {
		code, _ := httpGet(t, coordURL+"/api/ready")
		return code == http.StatusOK
	}, 30*time.Second, "coordinator never became ready")

	if err := rep2.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9 replica 2: %v", err)
	}
	_ = rep2.cmd.Wait()

	// Burst queries immediately: until the status poller notices the
	// kill, fan-outs still route a leg to the dead replica, and each must
	// fail over to the survivor (counted as replica_down / degraded)
	// instead of erroring. Distinct limits make every burst query a fresh
	// cache shape, so each one actually fans out instead of riding the
	// result cache or an in-flight twin.
	for i := 0; i < 20; i++ {
		url := fmt.Sprintf("%s/api/query?attrs=eph&limit=%d", coordURL, i+1)
		if code, body := httpGet(t, url); code != http.StatusOK {
			t.Fatalf("query %d right after kill = %d: %s", i, code, body)
		}
	}

	// Through the kill window and the rest of the load, the coordinator
	// must answer every query with an internally consistent result: one
	// epoch, matched == store_rows for the match-all query.
	queries, degradedSeen := 0, false
	for done := false; !done; {
		select {
		case err := <-genDone:
			if err != nil {
				t.Fatalf("epcgen stream: %v\nstdout: %s\nstderr: %s", err, genOut.String(), genErr.String())
			}
			done = true
		case <-time.After(200 * time.Millisecond):
		}
		code, body := httpGet(t, coordURL+"/api/query?attrs=eph")
		if code != http.StatusOK {
			t.Fatalf("coordinator query during replica outage = %d: %s", code, body)
		}
		var resp struct {
			Matched   int `json:"matched"`
			StoreRows int `json:"store_rows"`
			Cluster   *struct {
				Replicas int `json:"replicas"`
				Degraded int `json:"degraded"`
			} `json:"cluster"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("coordinator query JSON: %v\n%s", err, body)
		}
		if resp.Matched != resp.StoreRows {
			t.Fatalf("epoch-mixed answer: matched %d of store_rows %d", resp.Matched, resp.StoreRows)
		}
		if resp.Cluster != nil && resp.Cluster.Degraded > 0 {
			degradedSeen = true
		}
		queries++
	}
	if queries == 0 {
		t.Fatal("no queries issued during the load window")
	}

	// Let the surviving replica catch up to all 50k rows, then quiesce.
	waitFor(t, func() bool {
		_, body := httpGet(t, coordURL+"/api/query?attrs=eph")
		var resp struct {
			StoreRows int `json:"store_rows"`
		}
		return json.Unmarshal([]byte(body), &resp) == nil && resp.StoreRows == 50000
	}, 60*time.Second, "coordinator never saw all 50000 rows")

	// The coordinator's totals must equal the leader's own, query for
	// query. Publish the leader's analysis snapshot first — its
	// /api/query serves from the published epoch.
	if code, body := postEmptyBody(t, leaderURL+"/api/refresh"); code != http.StatusOK {
		t.Fatalf("leader refresh: %d %s", code, body)
	}
	for _, q := range []string{
		"/api/query?attrs=eph",
		"/api/query?attrs=eph&by=energy_class",
		"/api/query?preset=pa&by=district",
	} {
		_, leaderBody := httpGet(t, leaderURL+q)
		_, coordBody := httpGet(t, coordURL+q)
		var lr, cr struct {
			Matched   int    `json:"matched"`
			StoreRows int    `json:"store_rows"`
			Epoch     uint64 `json:"epoch"`
			Groups    []struct {
				Value string `json:"value"`
				Count int    `json:"count"`
			} `json:"groups"`
		}
		if err := json.Unmarshal([]byte(leaderBody), &lr); err != nil {
			t.Fatalf("leader %s: %v\n%s", q, err, leaderBody)
		}
		if err := json.Unmarshal([]byte(coordBody), &cr); err != nil {
			t.Fatalf("coordinator %s: %v\n%s", q, err, coordBody)
		}
		if cr.Matched != lr.Matched || cr.StoreRows != lr.StoreRows {
			t.Fatalf("%s: coordinator %d/%d, leader %d/%d", q, cr.Matched, cr.StoreRows, lr.Matched, lr.StoreRows)
		}
		if len(cr.Groups) != len(lr.Groups) {
			t.Fatalf("%s: coordinator %d groups, leader %d", q, len(cr.Groups), len(lr.Groups))
		}
		for i := range cr.Groups {
			if cr.Groups[i] != lr.Groups[i] {
				t.Fatalf("%s: group[%d] = %+v, leader %+v", q, i, cr.Groups[i], lr.Groups[i])
			}
		}

		// Rank statistics survive the scatter-gather merge: the
		// coordinator's quartiles are non-zero and — sketch merges being
		// exact — equal the leader's own, group for group.
		type quarts struct {
			Q1     float64 `json:"q1"`
			Median float64 `json:"median"`
			Q3     float64 `json:"q3"`
			P90    float64 `json:"p90"`
		}
		var lq, cq struct {
			Stats []struct {
				Attr   string  `json:"attr"`
				Count  int     `json:"count"`
				Q1     float64 `json:"q1"`
				Median float64 `json:"median"`
				Q3     float64 `json:"q3"`
			} `json:"stats"`
			Groups []struct {
				Value     string            `json:"value"`
				Quartiles map[string]quarts `json:"quartiles"`
			} `json:"groups"`
		}
		if err := json.Unmarshal([]byte(leaderBody), &lq); err != nil {
			t.Fatalf("leader %s: %v", q, err)
		}
		if err := json.Unmarshal([]byte(coordBody), &cq); err != nil {
			t.Fatalf("coordinator %s: %v", q, err)
		}
		for i, cs := range cq.Stats {
			ls := lq.Stats[i]
			if cs.Count > 0 && cs.Median == 0 && ls.Median != 0 {
				t.Fatalf("%s: merged stats[%s] quartiles read 0: %+v", q, cs.Attr, cs)
			}
			if cs.Q1 != ls.Q1 || cs.Median != ls.Median || cs.Q3 != ls.Q3 {
				t.Fatalf("%s: stats[%s] quartiles [%v %v %v], leader [%v %v %v]",
					q, cs.Attr, cs.Q1, cs.Median, cs.Q3, ls.Q1, ls.Median, ls.Q3)
			}
		}
		if len(cq.Groups) > 0 {
			nonZero := 0
			for i, cg := range cq.Groups {
				lg := lq.Groups[i]
				for attr, qs := range cg.Quartiles {
					if qs.Median != 0 {
						nonZero++
					}
					if qs != lg.Quartiles[attr] {
						t.Fatalf("%s: group %q quartiles[%s] = %+v, leader %+v",
							q, cg.Value, attr, qs, lg.Quartiles[attr])
					}
				}
			}
			if nonZero == 0 {
				t.Fatalf("%s: no merged group reported non-zero quartiles", q)
			}
		}
	}

	// The kill must be visible on the coordinator's metrics: legs failed
	// over (replica_down) and at least one degraded answer.
	_, metrics := httpGet(t, coordURL+"/metrics")
	down := metricValue(t, metrics, "indice_coord_replica_down_total")
	degraded := metricValue(t, metrics, "indice_coord_degraded_total")
	if down == 0 {
		t.Fatalf("indice_coord_replica_down_total = 0 after kill -9\n%s", metrics)
	}
	if degraded == 0 && !degradedSeen {
		t.Fatal("no degraded answer observed despite a dead replica")
	}

	// The survivor's replication metrics exist and count real syncs.
	_, repMetrics := httpGet(t, "http://"+rep1.addr+"/metrics")
	if metricValue(t, repMetrics, "indice_repl_applied_rows_total") < 50000 {
		t.Fatalf("survivor applied_rows < 50000\n%s", repMetrics)
	}
}

type roleProc struct {
	cmd  *exec.Cmd
	addr string
}

// startRole launches one indice-server with extra flags on an ephemeral
// port and waits for healthPath to answer 200.
func startRole(t *testing.T, bin, healthPath string, extra ...string) *roleProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addrCh := make(chan string, 1)
	var logMu sync.Mutex
	var logs bytes.Buffer
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logs.WriteString(line + "\n")
			logMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "serving INDICE on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	dump := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logs.String()
	}
	select {
	case addr := <-addrCh:
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + healthPath)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return &roleProc{cmd: cmd, addr: addr}
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("server at %s never answered %s\n%s", addr, healthPath, dump())
			}
			time.Sleep(50 * time.Millisecond)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address (args %v)\n%s", extra, dump())
	}
	panic("unreachable")
}

func waitFor(t *testing.T, cond func() bool, timeout time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func postEmptyBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// metricValue pulls one counter's value out of a Prometheus exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}
