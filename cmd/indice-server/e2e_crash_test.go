package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestE2EKillNineRecovery is the full-stack durability check: a real
// indice-server process on a real data directory, a real epcgen client
// streaming over HTTP that "crashes" via -crash-after, then kill -9 on
// the server itself. A restart over the same directory must serve every
// row the client saw acked — the paper's live-ingestion deployment story
// with the power cord pulled.
func TestE2EKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real binaries; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}

	bins := t.TempDir()
	serverBin := filepath.Join(bins, "indice-server")
	epcgenBin := filepath.Join(bins, "epcgen")
	for pkg, out := range map[string]string{
		"indice/cmd/indice-server": serverBin,
		"indice/cmd/epcgen":        epcgenBin,
	} {
		cmd := exec.Command(goBin, "build", "-o", out, pkg)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, msg)
		}
	}

	dataDir := t.TempDir()

	// Boot 1: empty durable server on an ephemeral port.
	srv, addr := startServer(t, serverBin, dataDir)

	// Stream 3000 synthetic certificates in 500-row batches, crashing the
	// client after 4 acks. Exit status 7 marks the deliberate crash path.
	gen := exec.Command(epcgenBin,
		"-n", "3000", "-seed", "42",
		"-stream", "http://"+addr+"/api/ingest",
		"-batch", "500", "-crash-after", "4")
	var genOut, genErr bytes.Buffer
	gen.Stdout, gen.Stderr = &genOut, &genErr
	err = gen.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 7 {
		t.Fatalf("epcgen -crash-after: err=%v (want exit status 7)\nstdout: %s\nstderr: %s",
			err, genOut.String(), genErr.String())
	}
	var ackedBatches, ackedRows int
	if _, err := fmt.Sscanf(genOut.String(), "crash-after: acked_batches=%d acked_rows=%d",
		&ackedBatches, &ackedRows); err != nil {
		t.Fatalf("parsing epcgen crash line %q: %v", genOut.String(), err)
	}
	if ackedBatches != 4 || ackedRows != 2000 {
		t.Fatalf("acked %d batches / %d rows, want 4 / 2000", ackedBatches, ackedRows)
	}

	// kill -9: no shutdown hook, no store close, no final fsync beyond
	// what each ack already forced.
	if err := srv.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	_ = srv.Wait()

	// Boot 2 over the same directory.
	srv2, addr2 := startServer(t, serverBin, dataDir)
	defer func() {
		_ = srv2.Process.Kill()
		_ = srv2.Wait()
	}()

	resp, err := http.Get("http://" + addr2 + "/api/store")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/store = %d (%v): %s", resp.StatusCode, err, body)
	}
	var status struct {
		Rows       int    `json:"rows"`
		Accepted   uint64 `json:"accepted"`
		Durability *struct {
			Enabled  bool `json:"enabled"`
			Recovery *struct {
				CheckpointRows  int `json:"checkpoint_rows"`
				ReplayedBatches int `json:"replayed_batches"`
				ReplayedRows    int `json:"replayed_rows"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("decoding /api/store: %v\n%s", err, body)
	}
	// The client stopped before the kill, so nothing was in flight: the
	// recovered store holds the acked rows exactly — no loss, no ghosts.
	if status.Rows != ackedRows {
		t.Fatalf("recovered rows = %d, want the %d acked before kill -9", status.Rows, ackedRows)
	}
	if status.Accepted != uint64(ackedRows) {
		t.Fatalf("recovered accepted counter = %d, want %d", status.Accepted, ackedRows)
	}
	if status.Durability == nil || !status.Durability.Enabled || status.Durability.Recovery == nil {
		t.Fatalf("restart reports no recovery: %s", body)
	}
	rec := status.Durability.Recovery
	if rec.CheckpointRows+rec.ReplayedRows != ackedRows || rec.ReplayedBatches == 0 {
		t.Fatalf("recovery accounting %+v does not add up to %d rows", rec, ackedRows)
	}

	// The recovered corpus is queryable, not just countable.
	if code, body := postEmpty(t, "http://"+addr2+"/api/refresh"); code != http.StatusOK {
		t.Fatalf("post-recovery /api/refresh = %d: %s", code, body)
	}
}

// startServer launches the built indice-server binary in durable live
// mode on an ephemeral port and parses the announced listen address.
func startServer(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-ingest", "-n", "0", "-shards", "2",
		"-data-dir", dataDir, "-fsync", "always",
		"-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	var logMu sync.Mutex
	var logs bytes.Buffer
	dump := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return logs.String()
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logs.WriteString(line + "\n")
			logMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "serving INDICE on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		// Wait until the API actually answers before handing it out.
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/api/store")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, addr
				}
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				t.Fatalf("server at %s never became healthy\n%s", addr, dump())
			}
			time.Sleep(50 * time.Millisecond)
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("server never announced its address\n%s", dump())
	}
	panic("unreachable")
}

func postEmpty(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}
