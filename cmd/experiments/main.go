// Command experiments regenerates every evaluation artifact of the paper:
// run `experiments -exp all -out figures` to produce the Figure 2/3/4
// SVGs, the dashboards and the textual reports EXPERIMENTS.md records.
//
// For performance work, -cpuprofile and -memprofile capture pprof
// evidence of any experiment at any scale without ad-hoc patches:
//
//	experiments -exp E5 -n 100000 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"indice/internal/experiments"
	"indice/internal/parallel"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (E1..E8) or 'all'")
		out        = flag.String("out", "figures", "output directory for figures and dashboards ('' disables)")
		certs      = flag.Int("n", 25000, "number of synthetic certificates (paper scale: 25000)")
		seed       = flag.Int64("seed", 1, "generation seed")
		par        = flag.Int("parallelism", 0, "analytics worker goroutines (0 = all CPUs, 1 = sequential); reports are identical at any setting")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to this file")
	)
	flag.Parse()

	scale := experiments.PaperScale()
	scale.Certificates = *certs
	scale.Seed = *seed
	if *certs < 5000 {
		// Shrink the city with the dataset so densities stay realistic.
		scale.Streets = 60
		scale.Civics = 12
	}

	fmt.Fprintf(os.Stderr, "generating synthetic world (%d certificates, seed %d)...\n",
		scale.Certificates, scale.Seed)
	world, err := experiments.NewWorld(scale)
	if err != nil {
		fatal(err)
	}
	workers := *par
	if workers == 0 {
		workers = parallel.Auto
	}
	runner := &experiments.Runner{World: world, OutDir: *out, Parallelism: workers}

	// The CPU profile covers the experiment runs only, not the synthetic
	// world generation above, so the hot paths under study dominate it.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var results []*experiments.Result
	if strings.EqualFold(*exp, "all") {
		results, err = runner.RunAll()
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := runner.Run(*exp)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	for _, res := range results {
		fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Report)
		for _, f := range res.Figures {
			fmt.Printf("  wrote %s\n", f)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
