// Command experiments regenerates every evaluation artifact of the paper:
// run `experiments -exp all -out figures` to produce the Figure 2/3/4
// SVGs, the dashboards and the textual reports EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indice/internal/experiments"
	"indice/internal/parallel"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (E1..E8) or 'all'")
		out   = flag.String("out", "figures", "output directory for figures and dashboards ('' disables)")
		certs = flag.Int("n", 25000, "number of synthetic certificates (paper scale: 25000)")
		seed  = flag.Int64("seed", 1, "generation seed")
		par   = flag.Int("parallelism", 0, "analytics worker goroutines (0 = all CPUs, 1 = sequential); reports are identical at any setting")
	)
	flag.Parse()

	scale := experiments.PaperScale()
	scale.Certificates = *certs
	scale.Seed = *seed
	if *certs < 5000 {
		// Shrink the city with the dataset so densities stay realistic.
		scale.Streets = 60
		scale.Civics = 12
	}

	fmt.Fprintf(os.Stderr, "generating synthetic world (%d certificates, seed %d)...\n",
		scale.Certificates, scale.Seed)
	world, err := experiments.NewWorld(scale)
	if err != nil {
		fatal(err)
	}
	workers := *par
	if workers == 0 {
		workers = parallel.Auto
	}
	runner := &experiments.Runner{World: world, OutDir: *out, Parallelism: workers}

	var results []*experiments.Result
	if strings.EqualFold(*exp, "all") {
		results, err = runner.RunAll()
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := runner.Run(*exp)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	for _, res := range results {
		fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Report)
		for _, f := range res.Figures {
			fmt.Printf("  wrote %s\n", f)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
