// Command epcgen generates a synthetic EPC collection in the typed-CSV
// format the indice CLI consumes, together with the referenced street map.
//
//	epcgen -n 25000 -seed 1 -out epcs.csv -streets streets.csv [-corrupt]
//
// Streaming mode feeds a live indice-server instead of writing a file,
// POSTing the collection to its ingestion endpoint in typed-CSV batches —
// the load generator for live-ingest deployments:
//
//	epcgen -n 100000 -stream http://localhost:8080/api/ingest \
//	       -batch 2000 -stream-interval 100ms
//
// Query-load mode turns epcgen into a closed-loop HTTP load generator:
// N client goroutines each issue /api/query requests back-to-back
// against a server or coordinator for a fixed duration, and the summary
// reports aggregate QPS with latency quantiles (JSON on stdout, for
// bench harnesses):
//
//	epcgen -load http://localhost:8090 -clients 1000 -duration 30s
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"indice/internal/obs"
	"indice/internal/synth"
	"indice/internal/table"
)

func main() {
	var (
		n        = flag.Int("n", 25000, "number of certificates")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "epcs.csv", "EPC table output path (typed CSV)")
		streets  = flag.String("streets", "", "optional street-map output path (plain CSV)")
		corrupt  = flag.Bool("corrupt", false, "inject address typos, missing fields and outliers")
		typoRate = flag.Float64("typo-rate", 0.12, "address typo rate when -corrupt is set")

		stream         = flag.String("stream", "", "POST the collection to this ingestion endpoint instead of writing -out")
		batchSize      = flag.Int("batch", 2000, "rows per ingestion batch when -stream is set")
		streamInterval = flag.Duration("stream-interval", 0, "pause between ingestion batches when -stream is set")
		crashAfter     = flag.Int("crash-after", 0, "with -stream: exit abruptly (no summary, status 7) after this many acked batches — the crash-recovery e2e driver")

		load     = flag.String("load", "", "closed-loop query load: base URL of a server or coordinator (e.g. http://localhost:8090)")
		clients  = flag.Int("clients", 100, "with -load: concurrent closed-loop clients")
		duration = flag.Duration("duration", 10*time.Second, "with -load: how long to drive the load")
	)
	flag.Parse()

	if *load != "" {
		if err := loadTest(*load, *clients, *duration); err != nil {
			fatal(err)
		}
		return
	}

	city, err := synth.GenerateCity(synth.CityConfig{
		Name: "Torino", Seed: *seed, Streets: 240, CivicsPerStreet: 50,
		DistrictRows: 2, DistrictCols: 4, NeighbourhoodsPerDistrict: 2,
	})
	if err != nil {
		fatal(err)
	}
	ds, err := synth.Generate(synth.Config{Seed: *seed, Certificates: *n, ResidentialShare: 0.72}, city)
	if err != nil {
		fatal(err)
	}
	tab := ds.Table
	if *corrupt {
		ccfg := synth.DefaultCorruptionConfig()
		ccfg.Seed = *seed + 1
		ccfg.AddressTypoRate = *typoRate
		dirty, truth, err := synth.Corrupt(tab, ccfg)
		if err != nil {
			fatal(err)
		}
		tab = dirty
		fmt.Fprintf(os.Stderr, "injected: %d address typos, %d ZIP defects, %d coordinate defects\n",
			len(truth.TypoRows), len(truth.ZIPDamagedRows), len(truth.CoordDamagedRows))
	}

	if *stream != "" {
		if err := streamTo(*stream, tab, *batchSize, *streamInterval, *crashAfter); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d certificates x %d attributes to %s\n",
		tab.NumRows(), tab.NumCols(), *out)

	if *streets != "" {
		sf, err := os.Create(*streets)
		if err != nil {
			fatal(err)
		}
		w := csv.NewWriter(sf)
		if err := w.Write([]string{"street", "house_number", "zip", "lat", "lon"}); err != nil {
			fatal(err)
		}
		for _, e := range city.Entries {
			rec := []string{
				e.Street, e.HouseNumber, e.ZIP,
				strconv.FormatFloat(e.Point.Lat, 'f', 6, 64),
				strconv.FormatFloat(e.Point.Lon, 'f', 6, 64),
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d street-map entries to %s\n", len(city.Entries), *streets)
	}
}

// streamTo POSTs the table to a live ingestion endpoint in typed-CSV
// batches, reporting throughput as it goes and recording each batch's
// round-trip time (encode + POST + ack) in a client-side histogram; the
// exit summary prints the p50/p95/p99 batch latency alongside the
// record throughput, making epcgen a self-contained load harness. With
// crashAfter > 0 the process exits abruptly once that many batches are
// acked, printing the exact acked row count on its last line — the e2e
// kill-9 harness streams, "crashes", restarts the server and asserts
// those rows survived.
func streamTo(url string, tab *table.Table, batchSize int, pause time.Duration, crashAfter int) error {
	if batchSize < 1 {
		return fmt.Errorf("batch size %d", batchSize)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	lat := obs.NewHistogram()
	start := time.Now()
	sent, rejected := 0, 0
	ackedBatches := 0
	for off := 0; off < tab.NumRows(); off += batchSize {
		batchStart := time.Now()
		end := off + batchSize
		if end > tab.NumRows() {
			end = tab.NumRows()
		}
		part, err := tab.Slice(off, end)
		if err != nil {
			return err
		}
		var body bytes.Buffer
		if err := part.WriteCSV(&body); err != nil {
			return err
		}
		resp, err := client.Post(url, "text/csv", &body)
		if err != nil {
			return fmt.Errorf("batch at row %d: %w", off, err)
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch at row %d: server answered %d: %s",
				off, resp.StatusCode, bytes.TrimSpace(payload))
		}
		var ack struct {
			Accepted int `json:"accepted"`
			Rejected int `json:"rejected"`
			Rows     int `json:"rows"`
		}
		if err := json.Unmarshal(payload, &ack); err != nil {
			return fmt.Errorf("batch at row %d: bad ingest response: %w", off, err)
		}
		sent += ack.Accepted
		rejected += ack.Rejected
		ackedBatches++
		lat.ObserveDuration(time.Since(batchStart))
		fmt.Fprintf(os.Stderr, "\rstreamed %d/%d certificates (%d rejected, store at %d rows)",
			sent, tab.NumRows(), rejected, ack.Rows)
		if crashAfter > 0 && ackedBatches >= crashAfter {
			// Simulated crash: no summary, no cleanup, a distinctive exit
			// code. The acked count goes to stdout for the harness.
			fmt.Printf("crash-after: acked_batches=%d acked_rows=%d\n", ackedBatches, sent)
			os.Exit(7)
		}
		if pause > 0 {
			time.Sleep(pause)
		}
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "\nstreamed %d certificates in %v (%.0f records/s, %d rejected)\n",
		sent, elapsed.Round(time.Millisecond), rate, rejected)
	s := lat.Load()
	fmt.Fprintf(os.Stderr, "batch latency over %d batches: p50=%v p95=%v p99=%v max=%v\n",
		s.Count, quantDur(s, 0.50), quantDur(s, 0.95), quantDur(s, 0.99),
		time.Duration(s.Max).Round(10*time.Microsecond))
	return nil
}

// quantDur renders one latency quantile of the batch histogram.
func quantDur(s obs.HistSnapshot, q float64) time.Duration {
	return time.Duration(s.Quantile(q)).Round(10 * time.Microsecond)
}

// loadResult is the machine-readable summary of one closed-loop run,
// printed as one JSON object on stdout (the human summary goes to
// stderr) so bench harnesses can collect it directly.
type loadResult struct {
	URL             string  `json:"url"`
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        uint64  `json:"requests"`
	Errors          uint64  `json:"errors"`
	QPS             float64 `json:"qps"`
	P50Millis       float64 `json:"p50_ms"`
	P90Millis       float64 `json:"p90_ms"`
	P99Millis       float64 `json:"p99_ms"`
	MaxMillis       float64 `json:"max_ms"`
}

// loadTest drives a closed loop: each client goroutine issues one query
// after another (no pacing — the next request starts when the previous
// answer lands), rotating over a small mix of stakeholder-preset
// queries that exercise predicate selection, grouped statistics and row
// pages. Latency lands in a shared lock-free histogram; non-200 answers
// and transport errors count as errors and do not pollute the latency
// distribution.
func loadTest(base string, clients int, duration time.Duration) error {
	if clients < 1 {
		return fmt.Errorf("%d clients", clients)
	}
	paths := []string{
		"/api/query?preset=public-administration&by=district",
		"/api/query?preset=citizen&limit=100",
		"/api/query?preset=energy-scientist&by=energy_class",
		"/api/query?attrs=eph&by=energy_class&limit=50",
	}
	tr := &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	lat := obs.NewHistogram()
	var okCount, errCount atomic.Uint64

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; ctx.Err() == nil; j++ {
				reqStart := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+paths[j%len(paths)], nil)
				if err != nil {
					errCount.Add(1)
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					continue
				}
				lat.ObserveDuration(time.Since(reqStart))
				okCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := lat.Load()
	ms := func(q float64) float64 { return s.Quantile(q) / 1e6 }
	res := loadResult{
		URL:             base,
		Clients:         clients,
		DurationSeconds: elapsed.Seconds(),
		Requests:        okCount.Load(),
		Errors:          errCount.Load(),
		QPS:             float64(okCount.Load()) / elapsed.Seconds(),
		P50Millis:       ms(0.50),
		P90Millis:       ms(0.90),
		P99Millis:       ms(0.99),
		MaxMillis:       float64(s.Max) / 1e6,
	}
	fmt.Fprintf(os.Stderr, "%d clients x %v against %s: %d ok, %d errors, %.0f qps, p50=%v p99=%v\n",
		clients, duration, base, res.Requests, res.Errors, res.QPS,
		quantDur(s, 0.50), quantDur(s, 0.99))
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if res.Requests == 0 {
		return fmt.Errorf("no request succeeded")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epcgen:", err)
	os.Exit(1)
}
