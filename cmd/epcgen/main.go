// Command epcgen generates a synthetic EPC collection in the typed-CSV
// format the indice CLI consumes, together with the referenced street map.
//
//	epcgen -n 25000 -seed 1 -out epcs.csv -streets streets.csv [-corrupt]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"indice/internal/synth"
)

func main() {
	var (
		n        = flag.Int("n", 25000, "number of certificates")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "epcs.csv", "EPC table output path (typed CSV)")
		streets  = flag.String("streets", "", "optional street-map output path (plain CSV)")
		corrupt  = flag.Bool("corrupt", false, "inject address typos, missing fields and outliers")
		typoRate = flag.Float64("typo-rate", 0.12, "address typo rate when -corrupt is set")
	)
	flag.Parse()

	city, err := synth.GenerateCity(synth.CityConfig{
		Name: "Torino", Seed: *seed, Streets: 240, CivicsPerStreet: 50,
		DistrictRows: 2, DistrictCols: 4, NeighbourhoodsPerDistrict: 2,
	})
	if err != nil {
		fatal(err)
	}
	ds, err := synth.Generate(synth.Config{Seed: *seed, Certificates: *n, ResidentialShare: 0.72}, city)
	if err != nil {
		fatal(err)
	}
	tab := ds.Table
	if *corrupt {
		ccfg := synth.DefaultCorruptionConfig()
		ccfg.Seed = *seed + 1
		ccfg.AddressTypoRate = *typoRate
		dirty, truth, err := synth.Corrupt(tab, ccfg)
		if err != nil {
			fatal(err)
		}
		tab = dirty
		fmt.Fprintf(os.Stderr, "injected: %d address typos, %d ZIP defects, %d coordinate defects\n",
			len(truth.TypoRows), len(truth.ZIPDamagedRows), len(truth.CoordDamagedRows))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d certificates x %d attributes to %s\n",
		tab.NumRows(), tab.NumCols(), *out)

	if *streets != "" {
		sf, err := os.Create(*streets)
		if err != nil {
			fatal(err)
		}
		w := csv.NewWriter(sf)
		if err := w.Write([]string{"street", "house_number", "zip", "lat", "lon"}); err != nil {
			fatal(err)
		}
		for _, e := range city.Entries {
			rec := []string{
				e.Street, e.HouseNumber, e.ZIP,
				strconv.FormatFloat(e.Point.Lat, 'f', 6, 64),
				strconv.FormatFloat(e.Point.Lon, 'f', 6, 64),
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d street-map entries to %s\n", len(city.Entries), *streets)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epcgen:", err)
	os.Exit(1)
}
