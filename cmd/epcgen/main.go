// Command epcgen generates a synthetic EPC collection in the typed-CSV
// format the indice CLI consumes, together with the referenced street map.
//
//	epcgen -n 25000 -seed 1 -out epcs.csv -streets streets.csv [-corrupt]
//
// Streaming mode feeds a live indice-server instead of writing a file,
// POSTing the collection to its ingestion endpoint in typed-CSV batches —
// the load generator for live-ingest deployments:
//
//	epcgen -n 100000 -stream http://localhost:8080/api/ingest \
//	       -batch 2000 -stream-interval 100ms
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"indice/internal/obs"
	"indice/internal/synth"
	"indice/internal/table"
)

func main() {
	var (
		n        = flag.Int("n", 25000, "number of certificates")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "epcs.csv", "EPC table output path (typed CSV)")
		streets  = flag.String("streets", "", "optional street-map output path (plain CSV)")
		corrupt  = flag.Bool("corrupt", false, "inject address typos, missing fields and outliers")
		typoRate = flag.Float64("typo-rate", 0.12, "address typo rate when -corrupt is set")

		stream         = flag.String("stream", "", "POST the collection to this ingestion endpoint instead of writing -out")
		batchSize      = flag.Int("batch", 2000, "rows per ingestion batch when -stream is set")
		streamInterval = flag.Duration("stream-interval", 0, "pause between ingestion batches when -stream is set")
		crashAfter     = flag.Int("crash-after", 0, "with -stream: exit abruptly (no summary, status 7) after this many acked batches — the crash-recovery e2e driver")
	)
	flag.Parse()

	city, err := synth.GenerateCity(synth.CityConfig{
		Name: "Torino", Seed: *seed, Streets: 240, CivicsPerStreet: 50,
		DistrictRows: 2, DistrictCols: 4, NeighbourhoodsPerDistrict: 2,
	})
	if err != nil {
		fatal(err)
	}
	ds, err := synth.Generate(synth.Config{Seed: *seed, Certificates: *n, ResidentialShare: 0.72}, city)
	if err != nil {
		fatal(err)
	}
	tab := ds.Table
	if *corrupt {
		ccfg := synth.DefaultCorruptionConfig()
		ccfg.Seed = *seed + 1
		ccfg.AddressTypoRate = *typoRate
		dirty, truth, err := synth.Corrupt(tab, ccfg)
		if err != nil {
			fatal(err)
		}
		tab = dirty
		fmt.Fprintf(os.Stderr, "injected: %d address typos, %d ZIP defects, %d coordinate defects\n",
			len(truth.TypoRows), len(truth.ZIPDamagedRows), len(truth.CoordDamagedRows))
	}

	if *stream != "" {
		if err := streamTo(*stream, tab, *batchSize, *streamInterval, *crashAfter); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d certificates x %d attributes to %s\n",
		tab.NumRows(), tab.NumCols(), *out)

	if *streets != "" {
		sf, err := os.Create(*streets)
		if err != nil {
			fatal(err)
		}
		w := csv.NewWriter(sf)
		if err := w.Write([]string{"street", "house_number", "zip", "lat", "lon"}); err != nil {
			fatal(err)
		}
		for _, e := range city.Entries {
			rec := []string{
				e.Street, e.HouseNumber, e.ZIP,
				strconv.FormatFloat(e.Point.Lat, 'f', 6, 64),
				strconv.FormatFloat(e.Point.Lon, 'f', 6, 64),
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d street-map entries to %s\n", len(city.Entries), *streets)
	}
}

// streamTo POSTs the table to a live ingestion endpoint in typed-CSV
// batches, reporting throughput as it goes and recording each batch's
// round-trip time (encode + POST + ack) in a client-side histogram; the
// exit summary prints the p50/p95/p99 batch latency alongside the
// record throughput, making epcgen a self-contained load harness. With
// crashAfter > 0 the process exits abruptly once that many batches are
// acked, printing the exact acked row count on its last line — the e2e
// kill-9 harness streams, "crashes", restarts the server and asserts
// those rows survived.
func streamTo(url string, tab *table.Table, batchSize int, pause time.Duration, crashAfter int) error {
	if batchSize < 1 {
		return fmt.Errorf("batch size %d", batchSize)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	lat := obs.NewHistogram()
	start := time.Now()
	sent, rejected := 0, 0
	ackedBatches := 0
	for off := 0; off < tab.NumRows(); off += batchSize {
		batchStart := time.Now()
		end := off + batchSize
		if end > tab.NumRows() {
			end = tab.NumRows()
		}
		part, err := tab.Slice(off, end)
		if err != nil {
			return err
		}
		var body bytes.Buffer
		if err := part.WriteCSV(&body); err != nil {
			return err
		}
		resp, err := client.Post(url, "text/csv", &body)
		if err != nil {
			return fmt.Errorf("batch at row %d: %w", off, err)
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch at row %d: server answered %d: %s",
				off, resp.StatusCode, bytes.TrimSpace(payload))
		}
		var ack struct {
			Accepted int `json:"accepted"`
			Rejected int `json:"rejected"`
			Rows     int `json:"rows"`
		}
		if err := json.Unmarshal(payload, &ack); err != nil {
			return fmt.Errorf("batch at row %d: bad ingest response: %w", off, err)
		}
		sent += ack.Accepted
		rejected += ack.Rejected
		ackedBatches++
		lat.ObserveDuration(time.Since(batchStart))
		fmt.Fprintf(os.Stderr, "\rstreamed %d/%d certificates (%d rejected, store at %d rows)",
			sent, tab.NumRows(), rejected, ack.Rows)
		if crashAfter > 0 && ackedBatches >= crashAfter {
			// Simulated crash: no summary, no cleanup, a distinctive exit
			// code. The acked count goes to stdout for the harness.
			fmt.Printf("crash-after: acked_batches=%d acked_rows=%d\n", ackedBatches, sent)
			os.Exit(7)
		}
		if pause > 0 {
			time.Sleep(pause)
		}
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "\nstreamed %d certificates in %v (%.0f records/s, %d rejected)\n",
		sent, elapsed.Round(time.Millisecond), rate, rejected)
	s := lat.Load()
	fmt.Fprintf(os.Stderr, "batch latency over %d batches: p50=%v p95=%v p99=%v max=%v\n",
		s.Count, quantDur(s, 0.50), quantDur(s, 0.95), quantDur(s, 0.99),
		time.Duration(s.Max).Round(10*time.Microsecond))
	return nil
}

// quantDur renders one latency quantile of the batch histogram.
func quantDur(s obs.HistSnapshot, q float64) time.Duration {
	return time.Duration(s.Quantile(q)).Round(10 * time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epcgen:", err)
	os.Exit(1)
}
