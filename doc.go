// Package indice is a from-scratch Go reproduction of INDICE (INformative
// DynamiC dashboard Engine), the EPC visual-analytics framework of
// Cerquitelli et al., "Exploring energy performance certificates through
// visualization" (BigVis @ EDBT/ICDT 2019).
//
// The implementation lives under internal/: see internal/core for the
// public pipeline (Engine: Preprocess → Analyze → Dashboard), DESIGN.md
// for the system inventory and per-experiment index, and EXPERIMENTS.md
// for the paper-vs-measured record. The benchmarks in bench_test.go
// regenerate every evaluation artifact of the paper (E1..E8) plus the
// ablations DESIGN.md calls out.
package indice
